// Package tensor provides a small dense float64 tensor library that backs
// the neural-network substrate. It supports the shapes and operations needed
// to train the convolutional classifiers evaluated in the Aergia paper:
// element-wise arithmetic, matrix multiplication, 2D convolution (forward
// and backward), max pooling, and deterministic random initialization.
//
// Tensors store data in row-major order. The package is deliberately free of
// external dependencies and unsafe tricks; clarity and determinism matter
// more than peak throughput for a simulation-driven reproduction.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Tensor is a dense row-major float64 tensor.
type Tensor struct {
	shape []int
	data  []float64
}

var (
	// ErrShapeMismatch is returned when two tensors with incompatible
	// shapes are combined.
	ErrShapeMismatch = errors.New("tensor: shape mismatch")
	// ErrBadShape is returned when a shape with non-positive dimensions
	// is supplied.
	ErrBadShape = errors.New("tensor: invalid shape")
)

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("%w: %v", ErrBadShape, shape)
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float64, n)}, nil
}

// MustNew is New but panics on an invalid shape. It is intended for
// statically known shapes (e.g. layer construction with validated configs).
func MustNew(shape ...int) *Tensor {
	t, err := New(shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is copied.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	t, err := New(shape...)
	if err != nil {
		return nil, err
	}
	if len(data) != len(t.data) {
		return nil, fmt.Errorf("%w: data length %d, shape %v needs %d",
			ErrShapeMismatch, len(data), shape, len(t.data))
	}
	copy(t.data, data)
	return t, nil
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.data) }

// Data returns the underlying storage. Mutating it mutates the tensor;
// callers inside the nn package use this for performance-critical loops.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: make([]int, len(t.shape)), data: make([]float64, len(t.data))}
	copy(c.shape, t.shape)
	copy(c.data, t.data)
	return c
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i, d := range t.shape {
		if o.shape[i] != d {
			return false
		}
	}
	return true
}

// Reshape returns a view-copy with the new shape; the element count must
// be preserved.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("%w: %v", ErrBadShape, shape)
		}
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: cannot reshape %v to %v", ErrShapeMismatch, t.shape, shape)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}, nil
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// AddInPlace adds o element-wise into t.
func (t *Tensor) AddInPlace(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("%w: %v vs %v", ErrShapeMismatch, t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] += v
	}
	return nil
}

// SubInPlace subtracts o element-wise from t.
func (t *Tensor) SubInPlace(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("%w: %v vs %v", ErrShapeMismatch, t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] -= v
	}
	return nil
}

// ScaleInPlace multiplies every element by a.
func (t *Tensor) ScaleInPlace(a float64) {
	for i := range t.data {
		t.data[i] *= a
	}
}

// AxpyInPlace computes t += a*o (BLAS axpy).
func (t *Tensor) AxpyInPlace(a float64, o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("%w: %v vs %v", ErrShapeMismatch, t.shape, o.shape)
	}
	for i, v := range o.data {
		t.data[i] += a * v
	}
	return nil
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) (*Tensor, error) {
	c := t.Clone()
	if err := c.AddInPlace(o); err != nil {
		return nil, err
	}
	return c, nil
}

// Sub returns t - o as a new tensor.
func Sub(t, o *Tensor) (*Tensor, error) {
	c := t.Clone()
	if err := c.SubInPlace(o); err != nil {
		return nil, err
	}
	return c, nil
}

// Scale returns a*t as a new tensor.
func Scale(a float64, t *Tensor) *Tensor {
	c := t.Clone()
	c.ScaleInPlace(a)
	return c
}

// Dot returns the inner product of two equally shaped tensors.
func Dot(a, b *Tensor) (float64, error) {
	if !a.SameShape(b) {
		return 0, fmt.Errorf("%w: %v vs %v", ErrShapeMismatch, a.shape, b.shape)
	}
	var s float64
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm of the tensor.
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += v
	}
	return s
}

// MaxIndex returns the index of the maximum element in a flat view.
func (t *Tensor) MaxIndex() int {
	best := 0
	for i, v := range t.data {
		if v > t.data[best] {
			best = i
		}
	}
	return best
}

// Equal reports element-wise equality within tolerance eps.
func Equal(a, b *Tensor, eps float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > eps {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus a few leading values).
func (t *Tensor) String() string {
	n := len(t.data)
	if n > 4 {
		n = 4
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.data[:n])
}
