// Package tensor provides a small dense tensor library that backs the
// neural-network substrate. It supports the shapes and operations needed
// to train the convolutional classifiers evaluated in the Aergia paper:
// element-wise arithmetic, matrix multiplication, 2D convolution (forward
// and backward), max pooling, and deterministic random initialization.
//
// Tensors store data in row-major order with a per-tensor element type
// (float64, the golden reference dtype, or float32, the fast training
// dtype — see DType). The package is deliberately free of external
// dependencies and unsafe tricks; clarity and determinism matter more than
// peak throughput for a simulation-driven reproduction.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Tensor is a dense row-major tensor. Exactly one of data/f32 is populated,
// selected by dt; the zero dtype is F64 so all pre-existing construction
// paths keep building float64 tensors.
type Tensor struct {
	shape []int
	dt    DType
	data  []float64
	f32   []float32
}

var (
	// ErrShapeMismatch is returned when two tensors with incompatible
	// shapes are combined.
	ErrShapeMismatch = errors.New("tensor: shape mismatch")
	// ErrBadShape is returned when a shape with non-positive dimensions
	// is supplied.
	ErrBadShape = errors.New("tensor: invalid shape")
	// ErrDTypeMismatch is returned when tensors with different element
	// types are combined, or a tensor meets a backend of the other dtype.
	ErrDTypeMismatch = errors.New("tensor: dtype mismatch")
)

// shapeCopy returns a fresh copy of shape for error formatting. Passing the
// incoming slice to fmt directly would make the parameter escape, forcing
// every variadic call site (ensureTensor and friends, on hot paths) to
// heap-allocate its shape arguments even when no error occurs.
func shapeCopy(shape []int) []int {
	s := make([]int, len(shape))
	copy(s, shape)
	return s
}

func checkShape(shape []int) (int, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return 0, fmt.Errorf("%w: %v", ErrBadShape, shapeCopy(shape))
		}
		n *= d
	}
	return n, nil
}

// New returns a zero-filled float64 tensor with the given shape.
func New(shape ...int) (*Tensor, error) {
	return NewOf(F64, shape...)
}

// NewOf returns a zero-filled tensor of the given element type and shape.
func NewOf(dt DType, shape ...int) (*Tensor, error) {
	n, err := checkShape(shape)
	if err != nil {
		return nil, err
	}
	s := make([]int, len(shape))
	copy(s, shape)
	t := &Tensor{shape: s, dt: dt}
	if dt == F32 {
		t.f32 = make([]float32, n)
	} else {
		t.data = make([]float64, n)
	}
	return t, nil
}

// MustNew is New but panics on an invalid shape. It is intended for
// statically known shapes (e.g. layer construction with validated configs).
func MustNew(shape ...int) *Tensor {
	return MustNewOf(F64, shape...)
}

// MustNewOf is NewOf but panics on an invalid shape.
func MustNewOf(dt DType, shape ...int) *Tensor {
	t, err := NewOf(dt, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// FromSlice wraps data in a float64 tensor of the given shape. The slice is
// copied.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	t, err := New(shape...)
	if err != nil {
		return nil, err
	}
	if len(data) != len(t.data) {
		return nil, fmt.Errorf("%w: data length %d, shape %v needs %d",
			ErrShapeMismatch, len(data), shape, len(t.data))
	}
	copy(t.data, data)
	return t, nil
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	if t.dt == F32 {
		return len(t.f32)
	}
	return len(t.data)
}

// DType returns the element type.
func (t *Tensor) DType() DType { return t.dt }

// Data returns the underlying float64 storage. Mutating it mutates the
// tensor; callers inside the nn package use this for performance-critical
// loops. It panics on a float32 tensor: dtype-generic callers must use
// CopyToF64/CopyFromF64 or Data32 instead of silently reading the wrong
// buffer.
func (t *Tensor) Data() []float64 {
	if t.dt != F64 {
		panic("tensor: Data() on float32 tensor (use Data32 or CopyToF64)")
	}
	return t.data
}

// Data32 returns the underlying float32 storage; it panics on a float64
// tensor.
func (t *Tensor) Data32() []float32 {
	if t.dt != F32 {
		panic("tensor: Data32() on float64 tensor (use Data)")
	}
	return t.f32
}

// Clone returns a deep copy (same dtype).
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: make([]int, len(t.shape)), dt: t.dt}
	copy(c.shape, t.shape)
	if t.dt == F32 {
		c.f32 = make([]float32, len(t.f32))
		copy(c.f32, t.f32)
	} else {
		c.data = make([]float64, len(t.data))
		copy(c.data, t.data)
	}
	return c
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i, d := range t.shape {
		if o.shape[i] != d {
			return false
		}
	}
	return true
}

func (t *Tensor) sameTyped(o *Tensor) error {
	if t.dt != o.dt {
		return fmt.Errorf("%w: %v vs %v", ErrDTypeMismatch, t.dt, o.dt)
	}
	if !t.SameShape(o) {
		return fmt.Errorf("%w: %v vs %v", ErrShapeMismatch, t.shape, o.shape)
	}
	return nil
}

// Reshape returns a view with the new shape sharing the same storage; the
// element count must be preserved.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n, err := checkShape(shape)
	if err != nil {
		return nil, err
	}
	if n != t.Size() {
		return nil, fmt.Errorf("%w: cannot reshape %v to %v", ErrShapeMismatch, t.shape, shapeCopy(shape))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, dt: t.dt, data: t.data, f32: t.f32}, nil
}

// ViewInto repoints dst to be a view of t's storage with the given shape,
// reusing dst's shape slice when possible. It is the zero-alloc steady-state
// form of Reshape: layers that reshape the same buffer every step (Flatten)
// keep a cached header and refresh it in place. A nil dst allocates one.
func (t *Tensor) ViewInto(dst *Tensor, shape ...int) (*Tensor, error) {
	n, err := checkShape(shape)
	if err != nil {
		return nil, err
	}
	if n != t.Size() {
		return nil, fmt.Errorf("%w: cannot view %v as %v", ErrShapeMismatch, t.shape, shapeCopy(shape))
	}
	if dst == nil {
		dst = &Tensor{}
	}
	if cap(dst.shape) < len(shape) {
		dst.shape = make([]int, len(shape))
	}
	dst.shape = dst.shape[:len(shape)]
	copy(dst.shape, shape)
	dst.dt, dst.data, dst.f32 = t.dt, t.data, t.f32
	return dst, nil
}

// At returns the element at the given multi-dimensional index as float64.
func (t *Tensor) At(idx ...int) float64 {
	off := t.offset(idx)
	if t.dt == F32 {
		return float64(t.f32[off])
	}
	return t.data[off]
}

// Set assigns the element at the given multi-dimensional index.
func (t *Tensor) Set(v float64, idx ...int) {
	off := t.offset(idx)
	if t.dt == F32 {
		t.f32[off] = float32(v)
	} else {
		t.data[off] = v
	}
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + ix
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	if t.dt == F32 {
		f := float32(v)
		for i := range t.f32 {
			t.f32[i] = f
		}
		return
	}
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// AddInPlace adds o element-wise into t. Both tensors must share a dtype;
// float32 tensors accumulate in float32.
func (t *Tensor) AddInPlace(o *Tensor) error {
	if err := t.sameTyped(o); err != nil {
		return err
	}
	if t.dt == F32 {
		for i, v := range o.f32 {
			t.f32[i] += v
		}
		return nil
	}
	for i, v := range o.data {
		t.data[i] += v
	}
	return nil
}

// SubInPlace subtracts o element-wise from t.
func (t *Tensor) SubInPlace(o *Tensor) error {
	if err := t.sameTyped(o); err != nil {
		return err
	}
	if t.dt == F32 {
		for i, v := range o.f32 {
			t.f32[i] -= v
		}
		return nil
	}
	for i, v := range o.data {
		t.data[i] -= v
	}
	return nil
}

// ScaleInPlace multiplies every element by a.
func (t *Tensor) ScaleInPlace(a float64) {
	if t.dt == F32 {
		f := float32(a)
		for i := range t.f32 {
			t.f32[i] *= f
		}
		return
	}
	for i := range t.data {
		t.data[i] *= a
	}
}

// AxpyInPlace computes t += a*o (BLAS axpy).
func (t *Tensor) AxpyInPlace(a float64, o *Tensor) error {
	if err := t.sameTyped(o); err != nil {
		return err
	}
	if t.dt == F32 {
		f := float32(a)
		for i, v := range o.f32 {
			t.f32[i] += f * v
		}
		return nil
	}
	for i, v := range o.data {
		t.data[i] += a * v
	}
	return nil
}

// CopyFrom copies o's elements into t, converting dtypes if they differ.
// Shapes must match.
func (t *Tensor) CopyFrom(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("%w: %v vs %v", ErrShapeMismatch, t.shape, o.shape)
	}
	switch {
	case t.dt == F64 && o.dt == F64:
		copy(t.data, o.data)
	case t.dt == F32 && o.dt == F32:
		copy(t.f32, o.f32)
	case t.dt == F64:
		widen(t.data, o.f32)
	default:
		narrow(t.f32, o.data)
	}
	return nil
}

// CopyToF64 writes the tensor's elements into dst as float64, widening
// float32 storage. dst must have exactly Size() elements.
func (t *Tensor) CopyToF64(dst []float64) {
	if len(dst) != t.Size() {
		panic(fmt.Sprintf("tensor: CopyToF64 dst %d, want %d", len(dst), t.Size()))
	}
	if t.dt == F32 {
		widen(dst, t.f32)
		return
	}
	copy(dst, t.data)
}

// CopyFromF64 overwrites the tensor's elements from src, narrowing to
// float32 storage when needed. src must have exactly Size() elements.
func (t *Tensor) CopyFromF64(src []float64) {
	if len(src) != t.Size() {
		panic(fmt.Sprintf("tensor: CopyFromF64 src %d, want %d", len(src), t.Size()))
	}
	if t.dt == F32 {
		narrow(t.f32, src)
		return
	}
	copy(t.data, src)
}

// ConvertTo switches the tensor's element type in place, converting the
// stored values. Converting float64→float32 rounds each element once; the
// reverse widens exactly. It is a no-op when the dtype already matches, so
// the tensor pointer (used as a map key by optimizers) is stable either way.
func (t *Tensor) ConvertTo(dt DType) {
	if t.dt == dt {
		return
	}
	if dt == F32 {
		t.f32 = make([]float32, len(t.data))
		narrow(t.f32, t.data)
		t.data = nil
	} else {
		t.data = make([]float64, len(t.f32))
		widen(t.data, t.f32)
		t.f32 = nil
	}
	t.dt = dt
}

// Add returns t + o as a new tensor.
func Add(t, o *Tensor) (*Tensor, error) {
	c := t.Clone()
	if err := c.AddInPlace(o); err != nil {
		return nil, err
	}
	return c, nil
}

// Sub returns t - o as a new tensor.
func Sub(t, o *Tensor) (*Tensor, error) {
	c := t.Clone()
	if err := c.SubInPlace(o); err != nil {
		return nil, err
	}
	return c, nil
}

// Scale returns a*t as a new tensor.
func Scale(a float64, t *Tensor) *Tensor {
	c := t.Clone()
	c.ScaleInPlace(a)
	return c
}

// Dot returns the inner product of two equally shaped and typed tensors,
// accumulated in float64.
func Dot(a, b *Tensor) (float64, error) {
	if err := a.sameTyped(b); err != nil {
		return 0, err
	}
	var s float64
	if a.dt == F32 {
		for i, v := range a.f32 {
			s += float64(v) * float64(b.f32[i])
		}
		return s, nil
	}
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s, nil
}

// Norm2 returns the Euclidean norm of the tensor (float64 accumulation).
func (t *Tensor) Norm2() float64 {
	var s float64
	if t.dt == F32 {
		for _, v := range t.f32 {
			s += float64(v) * float64(v)
		}
	} else {
		for _, v := range t.data {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements (float64 accumulation).
func (t *Tensor) Sum() float64 {
	var s float64
	if t.dt == F32 {
		for _, v := range t.f32 {
			s += float64(v)
		}
		return s
	}
	for _, v := range t.data {
		s += v
	}
	return s
}

// MaxIndex returns the index of the maximum element in a flat view. Ties
// resolve to the lowest index in both dtypes.
func (t *Tensor) MaxIndex() int {
	best := 0
	if t.dt == F32 {
		for i, v := range t.f32 {
			if v > t.f32[best] {
				best = i
			}
		}
		return best
	}
	for i, v := range t.data {
		if v > t.data[best] {
			best = i
		}
	}
	return best
}

// Equal reports element-wise equality within tolerance eps. Tensors of
// different dtypes compare by widened value.
func Equal(a, b *Tensor, eps float64) bool {
	if !a.SameShape(b) {
		return false
	}
	n := a.Size()
	for i := 0; i < n; i++ {
		var av, bv float64
		if a.dt == F32 {
			av = float64(a.f32[i])
		} else {
			av = a.data[i]
		}
		if b.dt == F32 {
			bv = float64(b.f32[i])
		} else {
			bv = b.data[i]
		}
		if math.Abs(av-bv) > eps {
			return false
		}
	}
	return true
}

// String renders a compact description (shape plus a few leading values).
func (t *Tensor) String() string {
	n := t.Size()
	if n > 4 {
		n = 4
	}
	if t.dt == F32 {
		return fmt.Sprintf("Tensor%v%v…", t.shape, t.f32[:n])
	}
	return fmt.Sprintf("Tensor%v%v…", t.shape, t.data[:n])
}
