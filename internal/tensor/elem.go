package tensor

// DType identifies the element type of a tensor or backend. The float64
// reference type is the golden-parity dtype: serial/parallel float64 runs are
// pinned bit-identical to the historical kernels. F32 halves the memory
// traffic of every kernel and is the training dtype of the serial32 and
// parallel32 backends; its results are deterministic (same bits run-to-run
// and across serial32/parallel32) but numerically distinct from float64.
type DType uint8

// Element types.
const (
	// F64 is the IEEE-754 double-precision reference element type.
	F64 DType = iota
	// F32 is the IEEE-754 single-precision training element type.
	F32
)

// String implements fmt.Stringer.
func (dt DType) String() string {
	if dt == F32 {
		return "float32"
	}
	return "float64"
}

// Bytes returns the size of one element in bytes.
func (dt DType) Bytes() int {
	if dt == F32 {
		return 4
	}
	return 8
}

// Elem constrains the element types a compute kernel can be instantiated
// with. Kernels are written once against Elem and stamped out per dtype, so
// the float64 instantiation executes exactly the historical operation
// sequence (Go never auto-fuses a*b+c, so generic code is bit-compatible
// with the hand-written float64 kernels it replaced).
type Elem interface {
	~float32 | ~float64
}

// Ops is the small per-element value set a generic kernel needs beyond plain
// arithmetic: a multiply-add, boundary conversions, and the dtype's epsilon.
// It is a zero-size value (the zerfoo compute-engine idiom): methods inline
// and carry no state.
type Ops[T Elem] struct{}

// FMA returns a*b + c. It is deliberately NOT a hardware fused
// multiply-add: the intermediate product is rounded to T, matching the
// two-instruction sequence of the scalar kernels, so float64 results stay
// bit-identical to the pre-generic backends.
func (Ops[T]) FMA(a, b, c T) T { return a*b + c }

// FromF64 narrows a float64 boundary value (dataset samples, wire weights)
// to the kernel element type.
func (Ops[T]) FromF64(v float64) T { return T(v) }

// ToF64 widens a kernel value back to the float64 boundary representation.
func (Ops[T]) ToF64(v T) float64 { return float64(v) }

// Eps returns the machine epsilon of T: the tolerance unit for
// dtype-sensitive comparisons (1.19e-7 for float32, 2.22e-16 for float64).
func (Ops[T]) Eps() T {
	var z T
	switch any(z).(type) {
	case float32:
		return T(1.1920929e-07)
	default:
		return T(2.220446049250313e-16)
	}
}

// widen copies src into dst, converting element types. The slices must have
// equal length.
func widen(dst []float64, src []float32) {
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// narrow copies src into dst, rounding to float32. The slices must have
// equal length.
func narrow(dst []float32, src []float64) {
	for i, v := range src {
		dst[i] = float32(v)
	}
}
