package tensor

import (
	"runtime"
	"sync"
)

// workerPool is a fixed set of goroutines executing submitted closures. One
// pool is shared by every Parallel backend of the same width, so concurrent
// clients in a federated simulation draw from the same bounded set of
// workers instead of spawning goroutines per operation.
type workerPool struct {
	tasks chan func()
	size  int
}

// MaxWorkers bounds the width of any worker pool; wider requests are
// clamped. Pools live for the process lifetime, so an unbounded width
// would let one absurd request pin millions of goroutines.
const MaxWorkers = 1024

var (
	poolMu sync.Mutex
	pools  = map[int]*workerPool{}
)

// getPool returns the shared pool with the given worker count, creating it
// on first use. workers <= 0 selects GOMAXPROCS. Pools live for the process
// lifetime; their goroutines are idle (blocked on a channel) when no
// parallel work is in flight.
func getPool(workers int) *workerPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > MaxWorkers {
		workers = MaxWorkers
	}
	poolMu.Lock()
	defer poolMu.Unlock()
	if p, ok := pools[workers]; ok {
		return p
	}
	p := &workerPool{tasks: make(chan func(), 4*workers), size: workers}
	for i := 0; i < workers; i++ {
		go func() {
			for f := range p.tasks {
				f()
			}
		}()
	}
	pools[workers] = p
	return p
}

// parallelFor partitions [0,n) into contiguous blocks and runs fn on each,
// using the pool for all blocks but the first (which runs on the calling
// goroutine). It returns when every block has completed. Two mechanisms make
// it deadlock-free even when a task itself calls parallelFor: a saturated
// task queue degrades submissions to inline execution, and a waiting caller
// drains other queued tasks instead of sleeping, so blocked parents always
// make progress on behalf of their children.
func (p *workerPool) parallelFor(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := p.size
	if w > n {
		w = n
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		wg.Add(1)
		task := func() {
			defer wg.Done()
			fn(lo, hi)
		}
		select {
		case p.tasks <- task:
		default:
			task()
		}
	}
	fn(0, chunk)
	// Drain the queue before blocking: every block of this call was either
	// enqueued above or ran inline, so once the queue reads empty they have
	// all been picked up, and waiting only depends on tasks already running.
	// Waiting relationships follow the call tree (parents wait on children),
	// which is acyclic, so wg.Wait cannot deadlock even under nesting.
	for {
		select {
		case task := <-p.tasks:
			task()
		default:
			wg.Wait()
			return
		}
	}
}

// scratch and scratch32 are process-wide arenas of per-dtype buffers backed
// by sync.Pool. Pooled backends stage im2col matrices here on the non-fused
// Conv2D path, so even direct backend calls perform no steady-state scratch
// allocations; the fused layer path stages in per-layer Workspaces instead.
var (
	scratch   = sync.Pool{New: func() any { b := make([]float64, 0, 1024); return &b }}
	scratch32 = sync.Pool{New: func() any { b := make([]float32, 0, 1024); return &b }}
)

// getScratch returns a float64 buffer with length n (contents unspecified).
func getScratch(n int) *[]float64 {
	bp, ok := scratch.Get().(*[]float64)
	if !ok || cap(*bp) < n {
		b := make([]float64, n)
		return &b
	}
	*bp = (*bp)[:n]
	return bp
}

// putScratch returns a float64 buffer to the arena.
func putScratch(bp *[]float64) { scratch.Put(bp) }

// getScratch32 returns a float32 buffer with length n (contents unspecified).
func getScratch32(n int) *[]float32 {
	bp, ok := scratch32.Get().(*[]float32)
	if !ok || cap(*bp) < n {
		b := make([]float32, n)
		return &b
	}
	*bp = (*bp)[:n]
	return bp
}

// putScratch32 returns a float32 buffer to the arena.
func putScratch32(bp *[]float32) { scratch32.Put(bp) }
