package tensor

import "fmt"

// Backend is the pluggable compute substrate behind every tensor operation
// the neural-network layers perform. Two implementations exist:
//
//   - Serial: the original single-threaded kernels (the correctness
//     reference); and
//   - Parallel: a worker-pool implementation with row-blocked matrix
//     multiplication and im2col-based convolution.
//
// Both implementations are guaranteed to produce bit-identical results for
// identical inputs: every output element is accumulated in exactly the same
// floating-point order by both backends (see DESIGN.md, "Determinism").
// Parallelism only partitions *independent* output elements across workers;
// it never splits a single reduction.
type Backend interface {
	// Name identifies the backend ("serial" or "parallel").
	Name() string
	// Workers reports the parallel width (1 for the serial backend).
	Workers() int

	// MatMul computes C = A × B for A (m×k) and B (k×n).
	MatMul(a, b *Tensor) (*Tensor, error)
	// MatMulTransA computes C = Aᵀ × B for A (k×m) and B (k×n).
	MatMulTransA(a, b *Tensor) (*Tensor, error)
	// MatMulTransB computes C = A × Bᵀ for A (m×k) and B (n×k).
	MatMulTransB(a, b *Tensor) (*Tensor, error)

	// DenseForward computes y = Wx + bias for W (out×in), x (in), bias
	// (out). A nil bias means zero bias.
	DenseForward(w, bias, x *Tensor) (*Tensor, error)
	// DenseBackward computes the gradients of DenseForward: it accumulates
	// gw += gy ⊗ x and gb += gy, and returns gx = Wᵀ gy.
	DenseBackward(w, x, gy, gw, gb *Tensor) (*Tensor, error)

	// Conv2D computes a 2-D convolution of x (C,H,W) with kernels
	// w (F,C,KH,KW) and optional bias b (F).
	Conv2D(x, w, b *Tensor, pad, stride int) (*Tensor, error)
	// Conv2DGrads computes the gradients of Conv2D with respect to the
	// input, kernels, and bias.
	Conv2DGrads(x, w, gy *Tensor, pad, stride int) (gx, gw, gb *Tensor, err error)

	// MaxPool2D applies non-overlapping max pooling and returns the pooled
	// tensor plus the flat argmax indices.
	MaxPool2D(x *Tensor, size int) (*Tensor, []int, error)
	// MaxPool2DGrad routes gy back through the argmax indices.
	MaxPool2DGrad(gy *Tensor, arg []int, inShape []int) (*Tensor, error)

	// Axpy computes y += a*x element-wise over raw slices (BLAS axpy). The
	// slices must have equal length.
	Axpy(a float64, x, y []float64)
	// Scale computes x *= a element-wise over a raw slice.
	Scale(a float64, x []float64)
}

// Serial is the single-threaded reference backend. Its methods delegate to
// the original package-level kernels, so it is byte-for-byte the seed
// implementation.
type Serial struct{}

var _ Backend = Serial{}

// Name implements Backend.
func (Serial) Name() string { return "serial" }

// Workers implements Backend.
func (Serial) Workers() int { return 1 }

// MatMul implements Backend.
func (Serial) MatMul(a, b *Tensor) (*Tensor, error) { return MatMul(a, b) }

// MatMulTransA implements Backend.
func (Serial) MatMulTransA(a, b *Tensor) (*Tensor, error) { return MatMulTransA(a, b) }

// MatMulTransB implements Backend.
func (Serial) MatMulTransB(a, b *Tensor) (*Tensor, error) { return MatMulTransB(a, b) }

// DenseForward implements Backend.
func (Serial) DenseForward(w, bias, x *Tensor) (*Tensor, error) {
	return DenseForward(w, bias, x)
}

// DenseBackward implements Backend.
func (Serial) DenseBackward(w, x, gy, gw, gb *Tensor) (*Tensor, error) {
	return DenseBackward(w, x, gy, gw, gb)
}

// Conv2D implements Backend.
func (Serial) Conv2D(x, w, b *Tensor, pad, stride int) (*Tensor, error) {
	return Conv2D(x, w, b, pad, stride)
}

// Conv2DGrads implements Backend.
func (Serial) Conv2DGrads(x, w, gy *Tensor, pad, stride int) (*Tensor, *Tensor, *Tensor, error) {
	return Conv2DGrads(x, w, gy, pad, stride)
}

// MaxPool2D implements Backend.
func (Serial) MaxPool2D(x *Tensor, size int) (*Tensor, []int, error) {
	return MaxPool2D(x, size)
}

// MaxPool2DGrad implements Backend.
func (Serial) MaxPool2DGrad(gy *Tensor, arg []int, inShape []int) (*Tensor, error) {
	return MaxPool2DGrad(gy, arg, inShape)
}

// Axpy implements Backend.
func (Serial) Axpy(a float64, x, y []float64) {
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale implements Backend.
func (Serial) Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// CanonicalBackend validates a backend name and returns its canonical
// form ("" maps to "serial") without constructing anything — in
// particular without spawning a worker pool, so request-validation layers
// can call it on untrusted input.
func CanonicalBackend(name string) (string, error) {
	switch name {
	case "", "serial":
		return "serial", nil
	case "parallel":
		return "parallel", nil
	default:
		return "", fmt.Errorf("tensor: unknown backend %q (want serial or parallel)", name)
	}
}

// NewBackend constructs a backend by name: "" or "serial" select the serial
// reference, "parallel" selects the worker-pool backend with the given
// worker count (0 = GOMAXPROCS, capped at MaxWorkers).
func NewBackend(name string, workers int) (Backend, error) {
	canonical, err := CanonicalBackend(name)
	if err != nil {
		return nil, err
	}
	if canonical == "parallel" {
		return NewParallel(workers), nil
	}
	return Serial{}, nil
}

// DenseForward computes y = Wx + bias for W (out×in), x (in) and bias (out);
// bias may be nil. This is the serial reference kernel for dense layers.
func DenseForward(w, bias, x *Tensor) (*Tensor, error) {
	if w.Dims() != 2 {
		return nil, fmt.Errorf("%w: DenseForward wants 2-D weights, got %v", ErrShapeMismatch, w.shape)
	}
	out, in := w.shape[0], w.shape[1]
	if x.Size() != in {
		return nil, fmt.Errorf("%w: DenseForward input %d, want %d", ErrShapeMismatch, x.Size(), in)
	}
	if bias != nil && bias.Size() != out {
		return nil, fmt.Errorf("%w: DenseForward bias %d, want %d", ErrShapeMismatch, bias.Size(), out)
	}
	y := MustNew(out)
	wd, xd, yd := w.data, x.data, y.data
	for o := 0; o < out; o++ {
		row := wd[o*in : (o+1)*in]
		var s float64
		if bias != nil {
			s = bias.data[o]
		}
		for i, v := range xd {
			s += row[i] * v
		}
		yd[o] = s
	}
	return y, nil
}

// DenseBackward computes the gradients of DenseForward: it accumulates
// gw += gy ⊗ x and gb += gy in place, and returns gx = Wᵀ gy. This is the
// serial reference kernel for dense layers.
func DenseBackward(w, x, gy, gw, gb *Tensor) (*Tensor, error) {
	if w.Dims() != 2 {
		return nil, fmt.Errorf("%w: DenseBackward wants 2-D weights, got %v", ErrShapeMismatch, w.shape)
	}
	out, in := w.shape[0], w.shape[1]
	if x.Size() != in || gy.Size() != out || gw.Size() != out*in || gb.Size() != out {
		return nil, fmt.Errorf("%w: DenseBackward sizes x=%d gy=%d gw=%d gb=%d for (%d×%d)",
			ErrShapeMismatch, x.Size(), gy.Size(), gw.Size(), gb.Size(), out, in)
	}
	gx := MustNew(in)
	wd, xd := w.data, x.data
	gyd, gxd, gwd, gbd := gy.data, gx.data, gw.data, gb.data
	for o := 0; o < out; o++ {
		g := gyd[o]
		gbd[o] += g
		if g == 0 {
			continue
		}
		row := wd[o*in : (o+1)*in]
		grow := gwd[o*in : (o+1)*in]
		for i, v := range xd {
			grow[i] += g * v
			gxd[i] += g * row[i]
		}
	}
	return gx, nil
}
