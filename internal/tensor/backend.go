package tensor

import "fmt"

// Backend is the pluggable compute substrate behind every tensor operation
// the neural-network layers perform. Four configurations exist, all stamped
// from one generic engine (see kernels.go):
//
//   - "serial":     single-threaded float64 — the correctness reference;
//   - "parallel":   worker-pool float64 with row-blocked matrix
//     multiplication and im2col-based convolution;
//   - "serial32":   single-threaded float32;
//   - "parallel32": worker-pool float32.
//
// Determinism: backends of the same dtype are guaranteed to produce
// bit-identical results for identical inputs — every output element is
// accumulated in exactly the same floating-point order (see DESIGN.md,
// "Determinism"). Parallelism only partitions *independent* output elements
// across workers; it never splits a single reduction. The float64 backends
// are additionally pinned to the historical golden runs; float32 backends
// are deterministic run-to-run but numerically distinct from float64
// (results agree within float32 tolerance).
//
// The *Fused and *WS methods are the zero-allocation hot path: they stage
// outputs, gradients, im2col matrices, activation masks, and argmax indices
// in a caller-owned Workspace (one per layer) and apply activations in the
// same pass as the linear kernel. Buffers they return are valid until the
// next call on the same workspace.
type Backend interface {
	// Name identifies the backend ("serial", "parallel", "serial32", or
	// "parallel32").
	Name() string
	// Workers reports the parallel width (1 for serial backends).
	Workers() int
	// DType reports the element type the backend computes in.
	DType() DType

	// MatMul computes C = A × B for A (m×k) and B (k×n).
	MatMul(a, b *Tensor) (*Tensor, error)
	// MatMulTransA computes C = Aᵀ × B for A (k×m) and B (k×n).
	MatMulTransA(a, b *Tensor) (*Tensor, error)
	// MatMulTransB computes C = A × Bᵀ for A (m×k) and B (n×k).
	MatMulTransB(a, b *Tensor) (*Tensor, error)

	// DenseForward computes y = Wx + bias for W (out×in), x (in), bias
	// (out). A nil bias means zero bias.
	DenseForward(w, bias, x *Tensor) (*Tensor, error)
	// DenseBackward computes the gradients of DenseForward: it accumulates
	// gw += gy ⊗ x and gb += gy, and returns gx = Wᵀ gy.
	DenseBackward(w, x, gy, gw, gb *Tensor) (*Tensor, error)
	// DenseForwardFused is DenseForward with a fused activation and
	// workspace-staged output.
	DenseForwardFused(w, bias, x *Tensor, act Activation, ws *Workspace) (*Tensor, error)
	// DenseBackwardFused is DenseBackward with the upstream gradient masked
	// through the fused activation and gx staged in the workspace.
	DenseBackwardFused(w, x, gy *Tensor, act Activation, gw, gb *Tensor, ws *Workspace) (*Tensor, error)

	// Conv2D computes a 2-D convolution of x (C,H,W) with kernels
	// w (F,C,KH,KW) and optional bias b (F).
	Conv2D(x, w, b *Tensor, pad, stride int) (*Tensor, error)
	// Conv2DGrads computes the gradients of Conv2D with respect to the
	// input, kernels, and bias.
	Conv2DGrads(x, w, gy *Tensor, pad, stride int) (gx, gw, gb *Tensor, err error)
	// Conv2DFused is Conv2D with a fused activation and workspace-staged
	// output and im2col scratch.
	Conv2DFused(x, w, b *Tensor, pad, stride int, act Activation, ws *Workspace) (*Tensor, error)
	// Conv2DGradsFused computes masked conv gradients, accumulating the
	// weight/bias gradients into gwAcc/gbAcc and returning workspace-owned
	// gx.
	Conv2DGradsFused(x, w, gy *Tensor, pad, stride int, act Activation, gwAcc, gbAcc *Tensor, ws *Workspace) (*Tensor, error)

	// MaxPool2D applies non-overlapping max pooling and returns the pooled
	// tensor plus the flat argmax indices.
	MaxPool2D(x *Tensor, size int) (*Tensor, []int, error)
	// MaxPool2DGrad routes gy back through the argmax indices.
	MaxPool2DGrad(gy *Tensor, arg []int, inShape []int) (*Tensor, error)
	// MaxPool2DWS is MaxPool2D with workspace-staged output and argmax.
	MaxPool2DWS(x *Tensor, size int, ws *Workspace) (*Tensor, []int, error)
	// MaxPool2DGradWS is MaxPool2DGrad with workspace-staged gx.
	MaxPool2DGradWS(gy *Tensor, arg []int, inShape []int, ws *Workspace) (*Tensor, error)

	// ReLUFwd computes relu(x) into the workspace and records the mask.
	ReLUFwd(x *Tensor, ws *Workspace) (*Tensor, error)
	// ReLUBwd masks gy through the recorded mask into the workspace.
	ReLUBwd(gy *Tensor, ws *Workspace) (*Tensor, error)

	// Axpy computes y += a*x element-wise over raw float64 slices (BLAS
	// axpy). The slices must have equal length.
	Axpy(a float64, x, y []float64)
	// Scale computes x *= a element-wise over a raw float64 slice.
	Scale(a float64, x []float64)
	// AxpyT computes y += a*x over tensors of either dtype.
	AxpyT(a float64, x, y *Tensor) error
	// ScaleT computes x *= a over a tensor of either dtype.
	ScaleT(a float64, x *Tensor)
}

var (
	_ Backend = Serial{}
	_ Backend = (*Parallel)(nil)
	_ Backend = (*engine[float32])(nil)
	_ Backend = (*engine[float64])(nil)
)

// Serial is the single-threaded float64 reference backend. Its methods
// delegate to the shared serial float64 engine, which executes the exact
// operation sequence of the seed implementation.
type Serial struct{}

// Name implements Backend.
func (Serial) Name() string { return "serial" }

// Workers implements Backend.
func (Serial) Workers() int { return 1 }

// DType implements Backend.
func (Serial) DType() DType { return F64 }

// MatMul implements Backend.
func (Serial) MatMul(a, b *Tensor) (*Tensor, error) { return serialRef.MatMul(a, b) }

// MatMulTransA implements Backend.
func (Serial) MatMulTransA(a, b *Tensor) (*Tensor, error) { return serialRef.MatMulTransA(a, b) }

// MatMulTransB implements Backend.
func (Serial) MatMulTransB(a, b *Tensor) (*Tensor, error) { return serialRef.MatMulTransB(a, b) }

// DenseForward implements Backend.
func (Serial) DenseForward(w, bias, x *Tensor) (*Tensor, error) {
	return serialRef.DenseForward(w, bias, x)
}

// DenseBackward implements Backend.
func (Serial) DenseBackward(w, x, gy, gw, gb *Tensor) (*Tensor, error) {
	return serialRef.DenseBackward(w, x, gy, gw, gb)
}

// DenseForwardFused implements Backend.
func (Serial) DenseForwardFused(w, bias, x *Tensor, act Activation, ws *Workspace) (*Tensor, error) {
	return serialRef.DenseForwardFused(w, bias, x, act, ws)
}

// DenseBackwardFused implements Backend.
func (Serial) DenseBackwardFused(w, x, gy *Tensor, act Activation, gw, gb *Tensor, ws *Workspace) (*Tensor, error) {
	return serialRef.DenseBackwardFused(w, x, gy, act, gw, gb, ws)
}

// Conv2D implements Backend.
func (Serial) Conv2D(x, w, b *Tensor, pad, stride int) (*Tensor, error) {
	return serialRef.Conv2D(x, w, b, pad, stride)
}

// Conv2DGrads implements Backend.
func (Serial) Conv2DGrads(x, w, gy *Tensor, pad, stride int) (*Tensor, *Tensor, *Tensor, error) {
	return serialRef.Conv2DGrads(x, w, gy, pad, stride)
}

// Conv2DFused implements Backend.
func (Serial) Conv2DFused(x, w, b *Tensor, pad, stride int, act Activation, ws *Workspace) (*Tensor, error) {
	return serialRef.Conv2DFused(x, w, b, pad, stride, act, ws)
}

// Conv2DGradsFused implements Backend.
func (Serial) Conv2DGradsFused(x, w, gy *Tensor, pad, stride int, act Activation, gwAcc, gbAcc *Tensor, ws *Workspace) (*Tensor, error) {
	return serialRef.Conv2DGradsFused(x, w, gy, pad, stride, act, gwAcc, gbAcc, ws)
}

// MaxPool2D implements Backend.
func (Serial) MaxPool2D(x *Tensor, size int) (*Tensor, []int, error) {
	return serialRef.MaxPool2D(x, size)
}

// MaxPool2DGrad implements Backend.
func (Serial) MaxPool2DGrad(gy *Tensor, arg []int, inShape []int) (*Tensor, error) {
	return serialRef.MaxPool2DGrad(gy, arg, inShape)
}

// MaxPool2DWS implements Backend.
func (Serial) MaxPool2DWS(x *Tensor, size int, ws *Workspace) (*Tensor, []int, error) {
	return serialRef.MaxPool2DWS(x, size, ws)
}

// MaxPool2DGradWS implements Backend.
func (Serial) MaxPool2DGradWS(gy *Tensor, arg []int, inShape []int, ws *Workspace) (*Tensor, error) {
	return serialRef.MaxPool2DGradWS(gy, arg, inShape, ws)
}

// ReLUFwd implements Backend.
func (Serial) ReLUFwd(x *Tensor, ws *Workspace) (*Tensor, error) { return serialRef.ReLUFwd(x, ws) }

// ReLUBwd implements Backend.
func (Serial) ReLUBwd(gy *Tensor, ws *Workspace) (*Tensor, error) { return serialRef.ReLUBwd(gy, ws) }

// Axpy implements Backend.
func (Serial) Axpy(a float64, x, y []float64) { serialRef.Axpy(a, x, y) }

// Scale implements Backend.
func (Serial) Scale(a float64, x []float64) { serialRef.Scale(a, x) }

// AxpyT implements Backend.
func (Serial) AxpyT(a float64, x, y *Tensor) error { return serialRef.AxpyT(a, x, y) }

// ScaleT implements Backend.
func (Serial) ScaleT(a float64, x *Tensor) { serialRef.ScaleT(a, x) }

// NewSerial32 returns the single-threaded float32 backend.
func NewSerial32() Backend { return serialRef32 }

// NewParallel32 returns the worker-pool float32 backend drawing from the
// shared pool of the given width; workers <= 0 selects GOMAXPROCS.
func NewParallel32(workers int) Backend {
	return newEngine32("parallel32", getPool(workers))
}

// BackendNames lists every registered backend name in canonical order.
func BackendNames() []string {
	return []string{"serial", "parallel", "serial32", "parallel32"}
}

// CanonicalBackend validates a backend name and returns its canonical
// form ("" maps to "serial") without constructing anything — in
// particular without spawning a worker pool, so request-validation layers
// can call it on untrusted input.
func CanonicalBackend(name string) (string, error) {
	switch name {
	case "":
		return "serial", nil
	case "serial", "parallel", "serial32", "parallel32":
		return name, nil
	default:
		return "", fmt.Errorf("tensor: unknown backend %q (want serial, parallel, serial32, or parallel32)", name)
	}
}

// NewBackend constructs a backend by name: "" or "serial" select the float64
// serial reference, "parallel" the float64 worker-pool backend, and
// "serial32"/"parallel32" their float32 counterparts. workers applies to the
// parallel variants (0 = GOMAXPROCS, capped at MaxWorkers).
func NewBackend(name string, workers int) (Backend, error) {
	canonical, err := CanonicalBackend(name)
	if err != nil {
		return nil, err
	}
	switch canonical {
	case "parallel":
		return NewParallel(workers), nil
	case "serial32":
		return NewSerial32(), nil
	case "parallel32":
		return NewParallel32(workers), nil
	default:
		return Serial{}, nil
	}
}

// ReferenceBackend returns the single-threaded backend of the same dtype as
// be: the backend whose results be is contractually bit-identical to.
// Evaluator replicas use this so sharded evaluation reproduces the
// single-backend bits for every dtype.
func ReferenceBackend(be Backend) Backend {
	if be != nil && be.DType() == F32 {
		return NewSerial32()
	}
	return Serial{}
}

// DenseForward computes y = Wx + bias for W (out×in), x (in) and bias (out);
// bias may be nil. This is the serial reference kernel for dense layers.
func DenseForward(w, bias, x *Tensor) (*Tensor, error) {
	return serialRef.DenseForward(w, bias, x)
}

// DenseBackward computes the gradients of DenseForward: it accumulates
// gw += gy ⊗ x and gb += gy in place, and returns gx = Wᵀ gy. This is the
// serial reference kernel for dense layers.
func DenseBackward(w, x, gy, gw, gb *Tensor) (*Tensor, error) {
	return serialRef.DenseBackward(w, x, gy, gw, gb)
}
