package tensor

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestParallelForNesting locks in the deadlock-freedom guarantee: tasks that
// themselves call parallelFor on the same pool must complete even when every
// worker is occupied by a parent task, because waiting parents drain the
// queue on behalf of their children.
func TestParallelForNesting(t *testing.T) {
	p := getPool(4)
	var leaves atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.parallelFor(16, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				p.parallelFor(16, func(lo, hi int) {
					leaves.Add(int64(hi - lo))
				})
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested parallelFor deadlocked")
	}
	if got := leaves.Load(); got != 16*16 {
		t.Fatalf("ran %d leaf iterations, want %d", got, 16*16)
	}
}
