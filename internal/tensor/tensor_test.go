package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadShapes(t *testing.T) {
	tests := []struct {
		name  string
		shape []int
	}{
		{name: "zero dim", shape: []int{0}},
		{name: "negative dim", shape: []int{2, -1}},
		{name: "zero middle", shape: []int{2, 0, 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.shape...); !errors.Is(err, ErrBadShape) {
				t.Fatalf("New(%v) err = %v, want ErrBadShape", tt.shape, err)
			}
		})
	}
}

func TestNewZeroFilled(t *testing.T) {
	x := MustNew(2, 3)
	if x.Size() != 6 {
		t.Fatalf("Size = %d, want 6", x.Size())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestFromSlice(t *testing.T) {
	x, err := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := x.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %v, want 6", got)
	}
	if got := x.At(0, 0); got != 1 {
		t.Fatalf("At(0,0) = %v, want 1", got)
	}
	if _, err := FromSlice([]float64{1, 2}, 3); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("mismatched FromSlice err = %v, want ErrShapeMismatch", err)
	}
}

func TestFromSliceCopies(t *testing.T) {
	src := []float64{1, 2}
	x, err := FromSlice(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	if x.At(0) != 1 {
		t.Fatal("FromSlice did not copy the input slice")
	}
}

func TestCloneIndependence(t *testing.T) {
	x := MustNew(2, 2)
	x.Set(7, 1, 1)
	y := x.Clone()
	y.Set(9, 1, 1)
	if x.At(1, 1) != 7 {
		t.Fatal("Clone shares storage with the original")
	}
}

func TestReshape(t *testing.T) {
	x, _ := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y, err := x.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := y.At(2, 1); got != 6 {
		t.Fatalf("reshaped At(2,1) = %v, want 6", got)
	}
	if _, err := x.Reshape(4, 2); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("bad reshape err = %v, want ErrShapeMismatch", err)
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b, _ := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 33, 44}
	for i, v := range sum.Data() {
		if v != want[i] {
			t.Fatalf("Add[%d] = %v, want %v", i, v, want[i])
		}
	}
	diff, err := Sub(b, a)
	if err != nil {
		t.Fatal(err)
	}
	wantD := []float64{9, 18, 27, 36}
	for i, v := range diff.Data() {
		if v != wantD[i] {
			t.Fatalf("Sub[%d] = %v, want %v", i, v, wantD[i])
		}
	}
	s := Scale(0.5, a)
	if s.At(1, 1) != 2 {
		t.Fatalf("Scale At(1,1) = %v, want 2", s.At(1, 1))
	}
}

func TestShapeMismatchErrors(t *testing.T) {
	a := MustNew(2, 2)
	b := MustNew(3)
	if err := a.AddInPlace(b); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("AddInPlace err = %v", err)
	}
	if err := a.SubInPlace(b); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("SubInPlace err = %v", err)
	}
	if err := a.AxpyInPlace(2, b); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("AxpyInPlace err = %v", err)
	}
	if _, err := Dot(a, b); !errors.Is(err, ErrShapeMismatch) {
		t.Fatalf("Dot err = %v", err)
	}
}

func TestMatMul(t *testing.T) {
	a, _ := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b, _ := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("MatMul[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	r := NewRNG(42)
	a := MustNew(4, 5)
	b := MustNew(5, 3)
	a.FillNormal(r, 1)
	b.FillNormal(r, 1)

	direct, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Aᵀ stored as at (5×4): MatMulTransA(at, b) must equal MatMul(a,b).
	at := MustNew(5, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	viaTransA, err := MatMulTransA(at, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(direct, viaTransA, 1e-12) {
		t.Fatal("MatMulTransA disagrees with MatMul")
	}
	// Bᵀ stored as bt (3×5): MatMulTransB(a, bt) must equal MatMul(a,b).
	bt := MustNew(3, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 3; j++ {
			bt.Set(b.At(i, j), j, i)
		}
	}
	viaTransB, err := MatMulTransB(a, bt)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(direct, viaTransB, 1e-12) {
		t.Fatal("MatMulTransB disagrees with MatMul")
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1x1 kernel with weight 1 and zero bias must reproduce the input.
	x, _ := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	w, _ := FromSlice([]float64{1}, 1, 1, 1, 1)
	b := MustNew(1)
	y, err := Conv2D(x, w, b, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(x, y, 0) {
		t.Fatalf("identity conv output %v", y)
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 2x2 averaging-like kernel over a 3x3 input, valid padding.
	x, _ := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	w, _ := FromSlice([]float64{1, 1, 1, 1}, 1, 1, 2, 2)
	y, err := Conv2D(x, w, nil, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{12, 16, 24, 28}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("conv[%d] = %v, want %v", i, v, want[i])
		}
	}
}

func TestConv2DPaddingShape(t *testing.T) {
	x := MustNew(2, 8, 8)
	w := MustNew(4, 2, 3, 3)
	y, err := Conv2D(x, w, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := y.Shape()
	if s[0] != 4 || s[1] != 8 || s[2] != 8 {
		t.Fatalf("same-conv shape = %v, want [4 8 8]", s)
	}
}

// TestConv2DGradsNumeric checks analytic conv gradients against central
// finite differences on a small random instance.
func TestConv2DGradsNumeric(t *testing.T) {
	r := NewRNG(7)
	x := MustNew(2, 5, 5)
	w := MustNew(3, 2, 3, 3)
	b := MustNew(3)
	x.FillNormal(r, 1)
	w.FillNormal(r, 0.5)
	b.FillNormal(r, 0.1)
	const pad, stride = 1, 1

	// Loss = sum(conv output); upstream gradient is all ones.
	loss := func() float64 {
		y, err := Conv2D(x, w, b, pad, stride)
		if err != nil {
			t.Fatal(err)
		}
		return y.Sum()
	}
	y, err := Conv2D(x, w, b, pad, stride)
	if err != nil {
		t.Fatal(err)
	}
	gy := MustNew(y.Shape()...)
	gy.Fill(1)
	gx, gw, gb, err := Conv2DGrads(x, w, gy, pad, stride)
	if err != nil {
		t.Fatal(err)
	}

	const eps = 1e-5
	check := func(name string, param, grad *Tensor, probe []int) {
		for _, i := range probe {
			orig := param.Data()[i]
			param.Data()[i] = orig + eps
			up := loss()
			param.Data()[i] = orig - eps
			down := loss()
			param.Data()[i] = orig
			num := (up - down) / (2 * eps)
			if math.Abs(num-grad.Data()[i]) > 1e-6*(1+math.Abs(num)) {
				t.Fatalf("%s grad[%d] = %v, numeric %v", name, i, grad.Data()[i], num)
			}
		}
	}
	check("x", x, gx, []int{0, 7, 24, 49})
	check("w", w, gw, []int{0, 5, 17, 53})
	check("b", b, gb, []int{0, 1, 2})
}

func TestMaxPool2DAndGrad(t *testing.T) {
	x, _ := FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 4, 4)
	y, arg, err := MaxPool2D(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, 8, 12, 16}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("pool[%d] = %v, want %v", i, v, want[i])
		}
	}
	gy, _ := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	gx, err := MaxPool2DGrad(gy, arg, x.Shape())
	if err != nil {
		t.Fatal(err)
	}
	if gx.Sum() != 10 {
		t.Fatalf("pool grad sum = %v, want 10", gx.Sum())
	}
	// Gradient must land exactly on the argmax positions.
	if gx.At(0, 1, 1) != 1 || gx.At(0, 1, 3) != 2 || gx.At(0, 3, 1) != 3 || gx.At(0, 3, 3) != 4 {
		t.Fatalf("pool grad misrouted: %v", gx.Data())
	}
}

func TestMaxPoolRejectsIndivisible(t *testing.T) {
	x := MustNew(1, 5, 5)
	if _, _, err := MaxPool2D(x, 2); !errors.Is(err, ErrBadShape) {
		t.Fatalf("err = %v, want ErrBadShape", err)
	}
}

func TestMaxIndex(t *testing.T) {
	x, _ := FromSlice([]float64{3, 9, 1, 9, 2}, 5)
	if got := x.MaxIndex(); got != 1 {
		t.Fatalf("MaxIndex = %d, want 1 (first max)", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(124)
	same := true
	a2 := NewRNG(123)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make(map[int]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(2024)
	const n = 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v", variance)
	}
}

// Property: addition commutes (testing/quick over random small vectors).
func TestQuickAddCommutes(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		a, _ := FromSlice(xs[:n], n)
		b, _ := FromSlice(ys[:n], n)
		ab, _ := Add(a, b)
		ba, _ := Add(b, a)
		return Equal(ab, ba, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling by a then 1/a round-trips (for safe magnitudes).
func TestQuickScaleRoundTrip(t *testing.T) {
	f := func(xs []float64, scale float64) bool {
		if len(xs) == 0 {
			return true
		}
		if math.Abs(scale) < 1e-3 || math.Abs(scale) > 1e3 || math.IsNaN(scale) {
			return true
		}
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		a, _ := FromSlice(xs, len(xs))
		b := Scale(1/scale, Scale(scale, a))
		return Equal(a, b, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot(a,a) >= 0 and equals Norm2 squared.
func TestQuickDotNormConsistency(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				return true
			}
		}
		a, _ := FromSlice(xs, len(xs))
		d, err := Dot(a, a)
		if err != nil || d < 0 {
			return false
		}
		n := a.Norm2()
		return math.Abs(d-n*n) <= 1e-6*(1+d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul distributes over addition: A(B+C) = AB + AC.
func TestQuickMatMulDistributes(t *testing.T) {
	r := NewRNG(31)
	for trial := 0; trial < 25; trial++ {
		m, k, n := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a, b, c := MustNew(m, k), MustNew(k, n), MustNew(k, n)
		a.FillNormal(r, 1)
		b.FillNormal(r, 1)
		c.FillNormal(r, 1)
		bc, _ := Add(b, c)
		left, _ := MatMul(a, bc)
		ab, _ := MatMul(a, b)
		ac, _ := MatMul(a, c)
		right, _ := Add(ab, ac)
		if !Equal(left, right, 1e-9) {
			t.Fatalf("distribution failed at m=%d k=%d n=%d", m, k, n)
		}
	}
}
