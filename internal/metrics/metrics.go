// Package metrics provides the statistics and formatting helpers the
// benchmark harness uses to regenerate the paper's tables and figures:
// summary statistics, histogram/kernel density estimates (Figure 8), and
// aligned text tables/series.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// ErrEmpty is returned for statistics over empty samples.
var ErrEmpty = errors.New("metrics: empty sample")

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Summarize computes descriptive statistics.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	n := float64(len(sorted))
	mean := sum / n
	// Two-pass variance: E[(x-mean)^2]. The one-pass E[x^2]-mean^2 form
	// cancels catastrophically when the spread is tiny relative to the
	// magnitude (e.g. wall-clock timestamps), collapsing Std to 0.
	var sq float64
	for _, v := range sorted {
		d := v - mean
		sq += d * d
	}
	variance := sq / n
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Std:    math.Sqrt(variance),
		Min:    sorted[0],
		P25:    Quantile(sorted, 0.25),
		Median: Quantile(sorted, 0.5),
		P75:    Quantile(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
	}, nil
}

// Quantile returns the q-quantile of a sorted sample using linear
// interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// DurationsToSeconds converts durations to float seconds.
func DurationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// Density is a Gaussian kernel density estimate over a fixed grid, the
// tool behind the paper's Figure 8 (density of round durations).
type Density struct {
	Xs []float64 `json:"xs"`
	Ys []float64 `json:"ys"`
}

// EstimateDensity computes a Gaussian KDE over `points` grid positions
// spanning [min, max] of the sample (with 10% margins). Bandwidth uses
// Silverman's rule of thumb; a non-positive override uses the rule.
func EstimateDensity(sample []float64, points int, bandwidth float64) (Density, error) {
	if len(sample) == 0 {
		return Density{}, ErrEmpty
	}
	if points <= 1 {
		points = 64
	}
	s, err := Summarize(sample)
	if err != nil {
		return Density{}, err
	}
	if bandwidth <= 0 {
		bandwidth = 1.06 * s.Std * math.Pow(float64(s.N), -0.2)
		if bandwidth <= 0 {
			bandwidth = 1e-9 + (s.Max-s.Min)/float64(points)
		}
		if bandwidth == 0 {
			bandwidth = 1
		}
	}
	span := s.Max - s.Min
	lo := s.Min - 0.1*span - 3*bandwidth
	hi := s.Max + 0.1*span + 3*bandwidth
	if hi <= lo {
		hi = lo + 1
	}
	d := Density{
		Xs: make([]float64, points),
		Ys: make([]float64, points),
	}
	step := (hi - lo) / float64(points-1)
	norm := 1 / (float64(len(sample)) * bandwidth * math.Sqrt(2*math.Pi))
	for i := 0; i < points; i++ {
		x := lo + float64(i)*step
		var y float64
		for _, v := range sample {
			z := (x - v) / bandwidth
			y += math.Exp(-0.5 * z * z)
		}
		d.Xs[i] = x
		d.Ys[i] = y * norm
	}
	return d, nil
}

// Peak returns the grid position with maximum density.
func (d Density) Peak() float64 {
	best := 0
	for i, y := range d.Ys {
		if y > d.Ys[best] {
			best = i
		}
	}
	if len(d.Xs) == 0 {
		return math.NaN()
	}
	return d.Xs[best]
}

// Table formats aligned rows for terminal output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case time.Duration:
			row[i] = fmt.Sprintf("%.2fs", x.Seconds())
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish comma-separated values (cells are
// quoted when they contain commas or quotes).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Sparkline renders values as a compact unicode bar series, handy for
// printing figure-like series in terminal output.
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := xs[0], xs[0]
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var b strings.Builder
	for _, v := range xs {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(blocks)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
