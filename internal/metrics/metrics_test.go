package metrics

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("std = %v", s.Std)
	}
}

// TestSummarizeOffsetVariance is a regression test for catastrophic
// cancellation: with samples at a large offset (1e8) and small spread,
// the old one-pass E[x^2]-mean^2 variance lost every significant digit
// and reported Std = 0. The two-pass form must keep full precision.
func TestSummarizeOffsetVariance(t *testing.T) {
	const offset = 1e8
	noise := []float64{-2, -1, 0, 1, 2} // variance 2, std sqrt(2)
	xs := make([]float64, len(noise))
	for i, v := range noise {
		xs[i] = offset + v
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Mean-offset) > 1e-6 {
		t.Fatalf("mean = %v, want %v", s.Mean, offset)
	}
	want := math.Sqrt(2)
	if math.Abs(s.Std-want) > 1e-9 {
		t.Fatalf("std = %v, want %v (catastrophic cancellation?)", s.Std, want)
	}

	// A constant sample stays exactly zero, not a small negative sqrt'd.
	s, err = Summarize([]float64{offset, offset, offset})
	if err != nil {
		t.Fatal(err)
	}
	if s.Std != 0 {
		t.Fatalf("constant-sample std = %v, want 0", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	tests := []struct {
		q, want float64
	}{
		{0, 0}, {1, 40}, {0.5, 20}, {0.25, 10}, {0.125, 5},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestDurationsToSeconds(t *testing.T) {
	xs := DurationsToSeconds([]time.Duration{time.Second, 500 * time.Millisecond})
	if xs[0] != 1 || xs[1] != 0.5 {
		t.Fatalf("seconds = %v", xs)
	}
}

func TestEstimateDensityPeakNearMode(t *testing.T) {
	// Bimodal sample; the highest peak should be near the heavier mode.
	var sample []float64
	for i := 0; i < 100; i++ {
		sample = append(sample, 10+0.1*float64(i%5))
	}
	for i := 0; i < 20; i++ {
		sample = append(sample, 30+0.1*float64(i%5))
	}
	d, err := EstimateDensity(sample, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	peak := d.Peak()
	if peak < 9 || peak > 12 {
		t.Fatalf("peak = %v, want near 10", peak)
	}
	// Density integrates to roughly 1.
	var integral float64
	for i := 1; i < len(d.Xs); i++ {
		integral += (d.Xs[i] - d.Xs[i-1]) * (d.Ys[i] + d.Ys[i-1]) / 2
	}
	if math.Abs(integral-1) > 0.05 {
		t.Fatalf("density integral = %v", integral)
	}
}

func TestEstimateDensityEmpty(t *testing.T) {
	if _, err := EstimateDensity(nil, 10, 0); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestEstimateDensityConstantSample(t *testing.T) {
	d, err := EstimateDensity([]float64{5, 5, 5}, 32, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range d.Ys {
		if math.IsNaN(y) || math.IsInf(y, 0) {
			t.Fatal("degenerate density produced NaN/Inf")
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("name", "value", "time")
	tbl.AddRow("alpha", 1.5, 2*time.Second)
	tbl.AddRow("beta-long-name", 0.25, 500*time.Millisecond)
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[2], "alpha") {
		t.Fatalf("table content:\n%s", out)
	}
	if !strings.Contains(out, "2.00s") {
		t.Fatalf("duration formatting missing:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("name", "note")
	tbl.AddRow("a", "plain")
	tbl.AddRow("b", `has "quotes", and commas`)
	out := tbl.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "name,note" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != `b,"has ""quotes"", and commas"` {
		t.Fatalf("quoted row = %q", lines[2])
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline runes = %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	flat := Sparkline([]float64{2, 2, 2})
	if len([]rune(flat)) != 3 {
		t.Fatalf("flat sparkline = %q", flat)
	}
}
