package sim

import (
	"testing"
	"time"

	"aergia/internal/comm"
)

func TestKernelOrdersEventsByTime(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(3*time.Second, func() { order = append(order, 3) })
	k.Schedule(1*time.Second, func() { order = append(order, 1) })
	k.Schedule(2*time.Second, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("Now = %v", k.Now())
	}
}

func TestKernelFIFOForSimultaneousEvents(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(time.Second, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var fired []time.Duration
	k.Schedule(time.Second, func() {
		fired = append(fired, k.Now())
		k.Schedule(2*time.Second, func() {
			fired = append(fired, k.Now())
		})
	})
	k.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 3*time.Second {
		t.Fatalf("fired = %v", fired)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	h := k.Schedule(time.Second, func() { ran = true })
	h.Cancel()
	k.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestKernelNegativeDelayClamped(t *testing.T) {
	k := NewKernel()
	k.Schedule(time.Second, func() {})
	k.Run()
	ran := false
	k.Schedule(-time.Second, func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if k.Now() != time.Second {
		t.Fatalf("clock moved backward: %v", k.Now())
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []int
	k.Schedule(1*time.Second, func() { fired = append(fired, 1) })
	k.Schedule(5*time.Second, func() { fired = append(fired, 5) })
	k.RunUntil(3 * time.Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v", fired)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", k.Now())
	}
	k.Run()
	if len(fired) != 2 {
		t.Fatalf("remaining event lost: %v", fired)
	}
}

type recorder struct {
	got []comm.Message
	at  []time.Duration
	env comm.Env
}

func (r *recorder) OnMessage(env comm.Env, msg comm.Message) {
	r.got = append(r.got, msg)
	r.at = append(r.at, env.Now())
	r.env = env
}

func TestNetworkDelivery(t *testing.T) {
	k := NewKernel()
	n := NewNetwork(k, UniformLink(100*time.Millisecond, 1000)) // 1000 B/s
	a, b := &recorder{}, &recorder{}
	n.Register(1, a)
	n.Register(2, b)
	env := n.Env(1)
	env.Send(comm.Message{To: 2, Kind: comm.KindTrain, Size: 500})
	k.Run()
	if len(b.got) != 1 {
		t.Fatalf("b received %d messages", len(b.got))
	}
	// 100ms latency + 500B/1000Bps = 600ms total.
	if b.at[0] != 600*time.Millisecond {
		t.Fatalf("delivery at %v, want 600ms", b.at[0])
	}
	if b.got[0].From != 1 {
		t.Fatalf("From = %d, want 1 (stamped by env)", b.got[0].From)
	}
}

func TestNetworkZeroBandwidthMeansInstantTransfer(t *testing.T) {
	k := NewKernel()
	n := NewNetwork(k, UniformLink(50*time.Millisecond, 0))
	r := &recorder{}
	n.Register(2, r)
	n.Env(1).Send(comm.Message{To: 2, Size: 1 << 30})
	// Registering sender not required for sending.
	k.Run()
	if len(r.got) != 1 || r.at[0] != 50*time.Millisecond {
		t.Fatalf("at = %v", r.at)
	}
}

func TestNetworkUnregisteredDestinationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unregistered destination")
		}
	}()
	k := NewKernel()
	n := NewNetwork(k, nil)
	n.Env(1).Send(comm.Message{To: 9})
	k.Run()
}

func TestEnvAfterTimerCancel(t *testing.T) {
	k := NewKernel()
	n := NewNetwork(k, nil)
	env := n.Env(1)
	ran := false
	timer := env.After(time.Second, func() { ran = true })
	timer.Cancel()
	k.Run()
	if ran {
		t.Fatal("cancelled timer fired")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		k := NewKernel()
		n := NewNetwork(k, UniformLink(10*time.Millisecond, 1e6))
		r := &recorder{}
		n.Register(2, r)
		env := n.Env(1)
		for i := 0; i < 20; i++ {
			env.Send(comm.Message{To: 2, Size: i * 100})
		}
		k.Run()
		return r.at
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replay lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replay diverged")
		}
	}
}
