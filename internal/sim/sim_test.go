package sim

import (
	"testing"
	"time"

	"aergia/internal/comm"
)

func TestKernelOrdersEventsByTime(t *testing.T) {
	k := NewKernel()
	var order []int
	k.Schedule(3*time.Second, func() { order = append(order, 3) })
	k.Schedule(1*time.Second, func() { order = append(order, 1) })
	k.Schedule(2*time.Second, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("Now = %v", k.Now())
	}
}

func TestKernelFIFOForSimultaneousEvents(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(time.Second, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	var fired []time.Duration
	k.Schedule(time.Second, func() {
		fired = append(fired, k.Now())
		k.Schedule(2*time.Second, func() {
			fired = append(fired, k.Now())
		})
	})
	k.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 3*time.Second {
		t.Fatalf("fired = %v", fired)
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	ran := false
	h := k.Schedule(time.Second, func() { ran = true })
	h.Cancel()
	k.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestKernelNegativeDelayClamped(t *testing.T) {
	k := NewKernel()
	k.Schedule(time.Second, func() {})
	k.Run()
	ran := false
	k.Schedule(-time.Second, func() { ran = true })
	k.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if k.Now() != time.Second {
		t.Fatalf("clock moved backward: %v", k.Now())
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []int
	k.Schedule(1*time.Second, func() { fired = append(fired, 1) })
	k.Schedule(5*time.Second, func() { fired = append(fired, 5) })
	k.RunUntil(3 * time.Second)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v", fired)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", k.Now())
	}
	k.Run()
	if len(fired) != 2 {
		t.Fatalf("remaining event lost: %v", fired)
	}
}

func TestKernelRunUntilCancelledHeadEvent(t *testing.T) {
	k := NewKernel()
	ran := false
	head := k.Schedule(1*time.Second, func() { t.Fatal("cancelled head event ran") })
	k.Schedule(2*time.Second, func() { ran = true })
	head.Cancel()
	// The cancelled event sits at the queue head; RunUntil must skip it
	// without firing it or advancing the clock to a stale timestamp.
	k.RunUntil(3 * time.Second)
	if !ran {
		t.Fatal("live event behind the cancelled head did not run")
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want the 3s deadline", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("queue still holds %d events", k.Pending())
	}
}

func TestKernelRunUntilOnlyCancelledEvents(t *testing.T) {
	k := NewKernel()
	for _, d := range []time.Duration{time.Second, 2 * time.Second} {
		h := k.Schedule(d, func() { t.Fatal("cancelled event ran") })
		h.Cancel()
	}
	// A queue of nothing but cancelled events must drain, and the clock
	// must still land exactly on the deadline.
	k.RunUntil(5 * time.Second)
	if k.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", k.Now())
	}
	if k.Pending() != 0 {
		t.Fatalf("cancelled events left in queue: %d", k.Pending())
	}
}

func TestKernelRunUntilEventExactlyAtDeadline(t *testing.T) {
	k := NewKernel()
	var fired []time.Duration
	k.Schedule(3*time.Second, func() { fired = append(fired, k.Now()) })
	k.Schedule(3*time.Second+time.Nanosecond, func() { fired = append(fired, k.Now()) })
	// Timestamps <= deadline fire; one nanosecond past it stays queued.
	k.RunUntil(3 * time.Second)
	if len(fired) != 1 || fired[0] != 3*time.Second {
		t.Fatalf("fired = %v, want exactly the at-deadline event", fired)
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("post-deadline event lost (pending = %d)", k.Pending())
	}
	k.Run()
	if len(fired) != 2 || fired[1] != 3*time.Second+time.Nanosecond {
		t.Fatalf("post-deadline event mis-fired: %v", fired)
	}
}

func TestKernelRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	k := NewKernel()
	// No events: the clock still advances to the deadline (the semantics
	// deadline-based strategies rely on)...
	k.RunUntil(4 * time.Second)
	if k.Now() != 4*time.Second {
		t.Fatalf("Now = %v, want 4s", k.Now())
	}
	// ...but never backward for an earlier deadline.
	k.RunUntil(2 * time.Second)
	if k.Now() != 4*time.Second {
		t.Fatalf("clock moved backward: %v", k.Now())
	}
}

type recorder struct {
	got []comm.Message
	at  []time.Duration
	env comm.Env
}

func (r *recorder) OnMessage(env comm.Env, msg comm.Message) {
	r.got = append(r.got, msg)
	r.at = append(r.at, env.Now())
	r.env = env
}

func TestNetworkDelivery(t *testing.T) {
	k := NewKernel()
	n := NewNetwork(k, UniformLink(100*time.Millisecond, 1000)) // 1000 B/s
	a, b := &recorder{}, &recorder{}
	n.Register(1, a)
	n.Register(2, b)
	env := n.Env(1)
	env.Send(comm.Message{To: 2, Kind: comm.KindTrain, Size: 500})
	k.Run()
	if len(b.got) != 1 {
		t.Fatalf("b received %d messages", len(b.got))
	}
	// 100ms latency + 500B/1000Bps = 600ms total.
	if b.at[0] != 600*time.Millisecond {
		t.Fatalf("delivery at %v, want 600ms", b.at[0])
	}
	if b.got[0].From != 1 {
		t.Fatalf("From = %d, want 1 (stamped by env)", b.got[0].From)
	}
}

func TestNetworkZeroBandwidthMeansInstantTransfer(t *testing.T) {
	k := NewKernel()
	n := NewNetwork(k, UniformLink(50*time.Millisecond, 0))
	r := &recorder{}
	n.Register(2, r)
	n.Env(1).Send(comm.Message{To: 2, Size: 1 << 30})
	// Registering sender not required for sending.
	k.Run()
	if len(r.got) != 1 || r.at[0] != 50*time.Millisecond {
		t.Fatalf("at = %v", r.at)
	}
}

func TestNetworkUnregisteredDestinationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unregistered destination")
		}
	}()
	k := NewKernel()
	n := NewNetwork(k, nil)
	n.Env(1).Send(comm.Message{To: 9})
	k.Run()
}

func TestEnvAfterTimerCancel(t *testing.T) {
	k := NewKernel()
	n := NewNetwork(k, nil)
	env := n.Env(1)
	ran := false
	timer := env.After(time.Second, func() { ran = true })
	timer.Cancel()
	k.Run()
	if ran {
		t.Fatal("cancelled timer fired")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		k := NewKernel()
		n := NewNetwork(k, UniformLink(10*time.Millisecond, 1e6))
		r := &recorder{}
		n.Register(2, r)
		env := n.Env(1)
		for i := 0; i < 20; i++ {
			env.Send(comm.Message{To: 2, Size: i * 100})
		}
		k.Run()
		return r.at
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("replay lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("replay diverged")
		}
	}
}
