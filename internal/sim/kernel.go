// Package sim provides a deterministic discrete-event simulation kernel and
// a simulated network transport. The federated-learning experiments run on
// virtual time: computation and message transfers schedule future events,
// and the kernel advances the clock from event to event. This reproduces
// the paper's round timelines (stragglers, offload overlap, deadlines)
// deterministically and orders of magnitude faster than wall-clock runs.
package sim

import (
	"container/heap"
	"time"
)

// event is a scheduled callback.
type event struct {
	at        time.Duration
	seq       uint64 // tie-breaker for deterministic FIFO ordering
	fn        func()
	cancelled bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic("sim: pushed non-event")
	}
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Kernel is a single-threaded discrete-event scheduler.
type Kernel struct {
	now   time.Duration
	seq   uint64
	queue eventQueue
}

// NewKernel returns a kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Handle cancels a scheduled event.
type Handle struct {
	ev *event
}

// Cancel implements comm.Timer semantics for kernel events.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.cancelled = true
	}
}

// Schedule runs fn after delay d (>= 0) of virtual time.
func (k *Kernel) Schedule(d time.Duration, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	ev := &event{at: k.now + d, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.queue, ev)
	return Handle{ev: ev}
}

// Step executes the next pending event and returns false when the queue is
// drained.
func (k *Kernel) Step() bool {
	for k.queue.Len() > 0 {
		popped := heap.Pop(&k.queue)
		ev, ok := popped.(*event)
		if !ok {
			panic("sim: queue held non-event")
		}
		if ev.cancelled {
			continue
		}
		k.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline; the clock never
// exceeds the deadline.
func (k *Kernel) RunUntil(deadline time.Duration) {
	for k.queue.Len() > 0 {
		// Peek.
		next := k.queue[0]
		if next.cancelled {
			heap.Pop(&k.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// Pending returns the number of queued (possibly cancelled) events.
func (k *Kernel) Pending() int { return k.queue.Len() }
