package sim

import (
	"fmt"
	"time"

	"aergia/internal/comm"
)

// LinkModel yields the latency and bandwidth of the directed link between
// two nodes. Bandwidth is in bytes per second; zero means infinite.
type LinkModel func(from, to comm.NodeID) (latency time.Duration, bandwidth float64)

// UniformLink returns a LinkModel with identical parameters on every link.
func UniformLink(latency time.Duration, bandwidth float64) LinkModel {
	return func(comm.NodeID, comm.NodeID) (time.Duration, float64) {
		return latency, bandwidth
	}
}

// Network is a simulated fully connected, reliable, asynchronous network
// over a Kernel (the paper's §3.1 network assumptions). Message delay is
// latency + size/bandwidth; Message.Size carries the true encoded payload
// size, so wire codecs (internal/codec) shrink the virtual transfer delay
// exactly as they shrink real TCP traffic.
type Network struct {
	kernel *Kernel
	link   LinkModel
	nodes  map[comm.NodeID]comm.Handler
}

// NewNetwork builds a network on the given kernel and link model.
func NewNetwork(kernel *Kernel, link LinkModel) *Network {
	if link == nil {
		link = UniformLink(0, 0)
	}
	return &Network{
		kernel: kernel,
		link:   link,
		nodes:  make(map[comm.NodeID]comm.Handler),
	}
}

var _ comm.Transport = (*Network)(nil)

// Register attaches a handler to a node ID.
func (n *Network) Register(id comm.NodeID, h comm.Handler) {
	n.nodes[id] = h
}

// Seal implements comm.Transport; simulated membership needs no binding
// step, so it is a no-op.
func (n *Network) Seal() error { return nil }

// Env returns the execution environment of a node.
func (n *Network) Env(id comm.NodeID) comm.Env {
	return &env{net: n, id: id}
}

// Invoke schedules fn in id's actor context at the current virtual time; it
// runs when the kernel is next driven, FIFO-ordered with any events already
// scheduled for that instant.
func (n *Network) Invoke(id comm.NodeID, fn func(comm.Env)) {
	n.kernel.Schedule(0, func() { fn(n.Env(id)) })
}

// Drive runs the kernel until the event queue drains. The simulated network
// is self-draining — a completed run leaves no pending events — so done is
// not waited on; callers detect an incomplete run by their own state (e.g.
// OnFinish never fired).
func (n *Network) Drive(<-chan struct{}) error {
	n.kernel.Run()
	return nil
}

// Close implements comm.Transport; the simulator holds no resources.
func (n *Network) Close() error { return nil }

// Kernel exposes the underlying kernel.
func (n *Network) Kernel() *Kernel { return n.kernel }

// deliver routes a message to its destination handler after the link delay.
func (n *Network) deliver(msg comm.Message) {
	dst, ok := n.nodes[msg.To]
	if !ok {
		panic(fmt.Sprintf("sim: message %s to unregistered node %d", msg.Kind, msg.To))
	}
	lat, bw := n.link(msg.From, msg.To)
	delay := lat
	if bw > 0 && msg.Size > 0 {
		delay += time.Duration(float64(msg.Size) / bw * float64(time.Second))
	}
	n.kernel.Schedule(delay, func() {
		dst.OnMessage(n.Env(msg.To), msg)
	})
}

// env implements comm.Env for one node on the simulated network.
type env struct {
	net *Network
	id  comm.NodeID
}

var _ comm.Env = (*env)(nil)

func (e *env) Now() time.Duration { return e.net.kernel.Now() }

func (e *env) Send(msg comm.Message) {
	msg.From = e.id
	e.net.deliver(msg)
}

func (e *env) After(d time.Duration, fn func()) comm.Timer {
	return e.net.kernel.Schedule(d, fn)
}
