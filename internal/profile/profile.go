// Package profile implements the online profiler that Aergia clients run
// during the first local batch updates of a round (§4.2). The profiler
// records the duration of each of the four training phases per batch and
// produces the report the federator's scheduler consumes. Profiling adds a
// small per-batch overhead, which the report accounts for so experiments
// can reproduce the paper's overhead claims (≤ ~0.6% of training time).
package profile

import (
	"errors"
	"fmt"
	"time"

	"aergia/internal/comm"
)

// DefaultOverheadFraction is the relative cost the active profiler adds to
// each profiled batch. The paper measures 0.22% ± 0.09 on average.
const DefaultOverheadFraction = 0.0022

// ErrNoSamples is returned when a report is requested before any batch was
// recorded.
var ErrNoSamples = errors.New("profile: no batches recorded")

// Profiler accumulates per-phase durations over the profiled batches of a
// round.
type Profiler struct {
	overhead float64

	batches int
	ff, fc  time.Duration
	bc, bf  time.Duration
}

// New returns a profiler with the given per-batch overhead fraction;
// a negative value selects DefaultOverheadFraction.
func New(overheadFraction float64) *Profiler {
	if overheadFraction < 0 {
		overheadFraction = DefaultOverheadFraction
	}
	return &Profiler{overhead: overheadFraction}
}

// RecordBatch adds one batch's phase durations.
func (p *Profiler) RecordBatch(ff, fc, bc, bf time.Duration) {
	p.batches++
	p.ff += ff
	p.fc += fc
	p.bc += bc
	p.bf += bf
}

// Batches returns the number of recorded batches.
func (p *Profiler) Batches() int { return p.batches }

// Overhead returns the extra time the profiler itself consumed while
// recording, modelled as a fraction of the profiled compute.
func (p *Profiler) Overhead() time.Duration {
	total := p.ff + p.fc + p.bc + p.bf
	return time.Duration(float64(total) * p.overhead)
}

// Report is the per-client profiling summary sent to the federator.
type Report struct {
	ClientID comm.NodeID `json:"clientId"`
	Round    int         `json:"round"`
	Batches  int         `json:"batches"`
	// Mean per-batch phase durations.
	FF time.Duration `json:"ffNanos"`
	FC time.Duration `json:"fcNanos"`
	BC time.Duration `json:"bcNanos"`
	BF time.Duration `json:"bfNanos"`
	// Remaining is the client's remaining local updates this round (ru_j
	// in Algorithm 1).
	Remaining int `json:"remaining"`
}

// Report summarizes the recorded batches.
func (p *Profiler) Report(clientID comm.NodeID, round, remaining int) (Report, error) {
	if p.batches == 0 {
		return Report{}, ErrNoSamples
	}
	n := time.Duration(p.batches)
	return Report{
		ClientID:  clientID,
		Round:     round,
		Batches:   p.batches,
		FF:        p.ff / n,
		FC:        p.fc / n,
		BC:        p.bc / n,
		BF:        p.bf / n,
		Remaining: remaining,
	}, nil
}

// Reset clears the profiler for the next round.
func (p *Profiler) Reset() {
	p.batches = 0
	p.ff, p.fc, p.bc, p.bf = 0, 0, 0, 0
}

// Tasks123 returns the per-batch duration of the phases that always stay
// local (ff + fc + bc), t_{j,{1,2,3}} in Algorithm 1.
func (r Report) Tasks123() time.Duration { return r.FF + r.FC + r.BC }

// Task4 returns the per-batch duration of the offloadable bf phase,
// t_{j,4} in Algorithm 1.
func (r Report) Task4() time.Duration { return r.BF }

// FullBatch returns the per-batch duration of a complete training cycle.
func (r Report) FullBatch() time.Duration { return r.Tasks123() + r.Task4() }

// ExpectedRemaining returns the projected time to finish the remaining
// local updates at the profiled speed.
func (r Report) ExpectedRemaining() time.Duration {
	return time.Duration(r.Remaining) * r.FullBatch()
}

// Validate checks internal consistency of a received report.
func (r Report) Validate() error {
	if r.Batches <= 0 {
		return fmt.Errorf("profile: report with %d batches", r.Batches)
	}
	if r.FF < 0 || r.FC < 0 || r.BC < 0 || r.BF < 0 {
		return errors.New("profile: negative phase duration")
	}
	if r.Remaining < 0 {
		return fmt.Errorf("profile: negative remaining updates %d", r.Remaining)
	}
	return nil
}
