package profile

import (
	"errors"
	"testing"
	"time"
)

func TestProfilerReportMeans(t *testing.T) {
	p := New(0)
	for i := 0; i < 4; i++ {
		p.RecordBatch(100*time.Millisecond, 10*time.Millisecond,
			20*time.Millisecond, 200*time.Millisecond)
	}
	r, err := p.Report(3, 7, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r.ClientID != 3 || r.Round != 7 || r.Batches != 4 || r.Remaining != 50 {
		t.Fatalf("report metadata = %+v", r)
	}
	if r.FF != 100*time.Millisecond || r.BF != 200*time.Millisecond {
		t.Fatalf("means = %+v", r)
	}
	if r.Tasks123() != 130*time.Millisecond {
		t.Fatalf("Tasks123 = %v", r.Tasks123())
	}
	if r.Task4() != 200*time.Millisecond {
		t.Fatalf("Task4 = %v", r.Task4())
	}
	if r.FullBatch() != 330*time.Millisecond {
		t.Fatalf("FullBatch = %v", r.FullBatch())
	}
	if r.ExpectedRemaining() != 50*330*time.Millisecond {
		t.Fatalf("ExpectedRemaining = %v", r.ExpectedRemaining())
	}
}

func TestProfilerEmptyReport(t *testing.T) {
	p := New(0)
	if _, err := p.Report(1, 0, 10); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("err = %v, want ErrNoSamples", err)
	}
}

func TestProfilerReset(t *testing.T) {
	p := New(0)
	p.RecordBatch(time.Millisecond, time.Millisecond, time.Millisecond, time.Millisecond)
	p.Reset()
	if p.Batches() != 0 {
		t.Fatalf("batches after reset = %d", p.Batches())
	}
	if _, err := p.Report(1, 0, 10); !errors.Is(err, ErrNoSamples) {
		t.Fatal("report after reset should fail")
	}
}

func TestProfilerOverheadAccounting(t *testing.T) {
	p := New(-1) // default fraction
	total := time.Duration(0)
	for i := 0; i < 100; i++ {
		p.RecordBatch(10*time.Millisecond, time.Millisecond,
			2*time.Millisecond, 20*time.Millisecond)
		total += 33 * time.Millisecond
	}
	oh := p.Overhead()
	frac := float64(oh) / float64(total)
	// The paper reports 0.22% ± 0.09 profiler overhead; our model matches.
	if frac < 0.001 || frac > 0.004 {
		t.Fatalf("overhead fraction = %v, want ≈0.0022", frac)
	}
}

func TestReportValidate(t *testing.T) {
	good := Report{Batches: 10, FF: 1, FC: 1, BC: 1, BF: 1, Remaining: 5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []Report{
		{Batches: 0, Remaining: 1},
		{Batches: 1, FF: -1, Remaining: 1},
		{Batches: 1, Remaining: -1},
	}
	for i, r := range tests {
		if err := r.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}
