package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aergia/internal/runner"
)

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.String()
}

// TestDaemonMetricsEndpoint covers GET /metrics: valid Prometheus text
// with the runner families present and moving as jobs finish.
func TestDaemonMetricsEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"),
		runner.WithExecutor(func(_ context.Context, j runner.Job) (json.RawMessage, error) {
			return json.RawMessage(`{"ok":true}`), nil
		}))

	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}

	if resp, _ := postJSON(t, ts.URL+"/jobs",
		`{"sweep":{"experiments":["fig4","table1"],"quick":[true]}}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	waitDone(t, ts.URL, 2)

	_, body = getBody(t, ts.URL+"/metrics")
	for _, family := range []string{
		"# TYPE aergia_runner_queue_depth gauge",
		"# TYPE aergia_runner_active_jobs gauge",
		"# TYPE aergia_runner_jobs_total counter",
		"# TYPE aergia_runner_job_seconds histogram",
		`aergia_runner_jobs_total{status="done"}`,
	} {
		if !strings.Contains(body, family) {
			t.Fatalf("metrics missing %q:\n%s", family, body)
		}
	}
	// Every non-comment line must parse as `name{labels} value`.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
	}
}

// TestDaemonPprofOptIn pins that /debug/pprof is absent by default and
// served when the flag enables it.
func TestDaemonPprofOptIn(t *testing.T) {
	st, err := runner.Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r := runner.New(st, 1)
	defer r.Close()

	off := httptest.NewServer(newServer(r, st, nil, false))
	defer off.Close()
	if resp, _ := getBody(t, off.URL+"/debug/pprof/"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off = %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(newServer(r, st, nil, true))
	defer on.Close()
	resp, body := getBody(t, on.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof on = %d, body %q", resp.StatusCode, body)
	}
}

// TestDaemonHealthzJobLifecycle asserts the /healthz queue counters move
// across a job's life: queued behind a blocked slot, running while the
// executor holds it, and done after release — not just a 200.
func TestDaemonHealthzJobLifecycle(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	st, err := runner.Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r := runner.New(st, 1, runner.WithExecutor(func(_ context.Context, j runner.Job) (json.RawMessage, error) {
		started <- j.ID()
		<-release
		return json.RawMessage(`{"ok":true}`), nil
	}))
	defer r.Close()
	ts := httptest.NewServer(newServer(r, st, nil, false))
	defer ts.Close()

	counts := func() map[string]int {
		var health struct {
			Status string         `json:"status"`
			Jobs   map[string]int `json:"jobs"`
		}
		if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
			t.Fatalf("healthz = %d", code)
		}
		if health.Status != "ok" {
			t.Fatalf("healthz status = %q", health.Status)
		}
		return health.Jobs
	}

	if got := counts(); len(got) != 0 {
		t.Fatalf("fresh daemon jobs = %v, want none", got)
	}

	// Two distinct jobs on one slot: the first occupies it, the second
	// queues behind it.
	for seed := 1; seed <= 2; seed++ {
		body := fmt.Sprintf(`{"experiment":"fig4","options":{"quick":true,"seed":%d}}`, seed)
		if resp, out := postJSON(t, ts.URL+"/jobs", body); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit = %d: %s", resp.StatusCode, out)
		}
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("executor never started")
	}
	got := counts()
	if got["running"] != 1 || got["queued"] != 1 {
		t.Fatalf("mid-flight jobs = %v, want 1 running and 1 queued", got)
	}

	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for {
		got = counts()
		if got["done"] == 2 && got["running"] == 0 && got["queued"] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("final jobs = %v, want 2 done", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
