package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aergia/internal/experiments"
	"aergia/internal/fed"
	"aergia/internal/runner"
)

type jobsResponse struct {
	Jobs []runner.JobState `json:"jobs"`
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitDone polls the list endpoint until want jobs are done or the
// deadline passes.
func waitDone(t *testing.T, base string, want int) []runner.JobState {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var list jobsResponse
		getJSON(t, base+"/jobs?status=done", &list)
		if len(list.Jobs) >= want {
			return list.Jobs
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d done jobs", want)
	return nil
}

// newTestServer starts a daemon instance; the returned stop function
// releases the store's file lock so a successor can open the same path
// (it is also registered as cleanup and safe to call twice).
func newTestServer(t *testing.T, storePath string, opts ...runner.Option) (*httptest.Server, *runner.Store, func()) {
	t.Helper()
	st, err := runner.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	r := runner.New(st, 4, opts...)
	ctrl, err := fed.NewControl(r, fed.ControlConfig{Heartbeat: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(r, st, ctrl, false))
	var once sync.Once
	stop := func() {
		once.Do(func() {
			ts.Close()
			if err := ctrl.Close(); err != nil {
				t.Errorf("control close: %v", err)
			}
			r.Close()
			st.Close()
		})
	}
	t.Cleanup(stop)
	return ts, st, stop
}

// TestDaemonSweepEndToEnd is the acceptance path: a sweep of four quick
// jobs is accepted, runs concurrently, and every persisted result is
// byte-identical to a direct in-process run with the same options.
func TestDaemonSweepEndToEnd(t *testing.T) {
	ts, st, _ := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"))

	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	resp, body := postJSON(t, ts.URL+"/jobs",
		`{"sweep":{"experiments":["fig4","table1","profiler","ablation-freeze"],"seeds":[5],"quick":[true]}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var submitted jobsResponse
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	if len(submitted.Jobs) != 4 {
		t.Fatalf("submitted %d jobs, want 4", len(submitted.Jobs))
	}

	waitDone(t, ts.URL, 4)

	for _, sub := range submitted.Jobs {
		var st runner.JobState
		if code := getJSON(t, ts.URL+"/jobs/"+sub.ID, &st); code != http.StatusOK {
			t.Fatalf("get %s = %d", sub.ID, code)
		}
		if st.Status != runner.StatusDone || len(st.Result) == 0 {
			t.Fatalf("job %s = %+v", sub.ID, st)
		}
		direct, err := experiments.Run(st.Experiment, st.Options)
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if string(st.Result) != string(want) {
			t.Fatalf("job %s result diverged from direct run:\ndaemon: %s\ndirect: %s",
				sub.ID, st.Result, want)
		}
	}
	if st.Len() != 4 {
		t.Fatalf("store has %d records, want 4", st.Len())
	}
}

// TestDaemonCodecJobRoundTrip pins the codec option through the service
// path: a submitted job carrying a codec normalizes, runs, and comes back
// with the codec in its options and in the persisted canonical record —
// byte-identical to a direct in-process run — while an unknown codec is a
// loud 400 at submission time.
func TestDaemonCodecJobRoundTrip(t *testing.T) {
	ts, _, _ := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"))

	resp, body := postJSON(t, ts.URL+"/jobs",
		`{"experiment":"table1","options":{"quick":true,"seed":3,"codec":"q8"}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var submitted jobsResponse
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	if len(submitted.Jobs) != 1 || submitted.Jobs[0].Options.Codec != "q8" {
		t.Fatalf("submitted jobs = %+v, want one q8 job", submitted.Jobs)
	}
	waitDone(t, ts.URL, 1)

	var got runner.JobState
	if code := getJSON(t, ts.URL+"/jobs/"+submitted.Jobs[0].ID, &got); code != http.StatusOK {
		t.Fatalf("get = %d", code)
	}
	if got.Status != runner.StatusDone || got.Options.Codec != "q8" {
		t.Fatalf("fetched job = %+v", got)
	}
	if !strings.Contains(string(got.Result), `"codec":"q8"`) {
		t.Fatalf("persisted record lost the codec:\n%s", got.Result)
	}
	direct, err := experiments.Run(got.Experiment, got.Options)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Result) != string(want) {
		t.Fatalf("daemon result diverged from direct run:\ndaemon: %s\ndirect: %s", got.Result, want)
	}

	if resp, _ := postJSON(t, ts.URL+"/jobs",
		`{"experiment":"table1","options":{"quick":true,"codec":"gzip"}}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown codec = %d, want 400", resp.StatusCode)
	}
}

// TestDaemonRestartResumesSweep restarts the daemon on the same store
// mid-sweep; resubmitting the full sweep only computes the missing half.
func TestDaemonRestartResumesSweep(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "store.jsonl")
	counting := func(count *atomic.Int64) runner.Option {
		return runner.WithExecutor(func(_ context.Context, j runner.Job) (json.RawMessage, error) {
			count.Add(1)
			return json.RawMessage(fmt.Sprintf(`{"job":%q}`, j.ID())), nil
		})
	}
	sweep := `{"sweep":{"experiments":["fig6","fig7"],"seeds":[1,2],"quick":[true]}}`
	half := `{"sweep":{"experiments":["fig6"],"seeds":[1,2],"quick":[true]}}`

	// First life: only half the grid completes before the "crash".
	var firstCount atomic.Int64
	ts1, _, stop1 := newTestServer(t, storePath, counting(&firstCount))
	if resp, body := postJSON(t, ts1.URL+"/jobs", half); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", resp.StatusCode, body)
	}
	done := waitDone(t, ts1.URL, 2)
	firstID := done[0].ID
	stop1()

	// Second life: same store, full sweep.
	var secondCount atomic.Int64
	ts2, st2, _ := newTestServer(t, storePath, counting(&secondCount))
	if st2.Len() != 2 {
		t.Fatalf("restarted store has %d records, want 2", st2.Len())
	}
	resp, body := postJSON(t, ts2.URL+"/jobs", sweep)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d: %s", resp.StatusCode, body)
	}
	var submitted jobsResponse
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts2.URL, 4)
	if got := secondCount.Load(); got != 2 {
		t.Fatalf("restart recomputed %d jobs, want only the missing 2", got)
	}
	// A job from the first life is still fetchable, result included.
	var rec runner.JobState
	if code := getJSON(t, ts2.URL+"/jobs/"+firstID, &rec); code != http.StatusOK {
		t.Fatalf("get resumed job = %d", code)
	}
	if rec.Status != runner.StatusDone || len(rec.Result) == 0 {
		t.Fatalf("resumed job = %+v", rec)
	}
}

// TestDaemonServesStoreOnlyJobs covers fetching a job that completed in a
// previous daemon life and was never resubmitted.
func TestDaemonServesStoreOnlyJobs(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "store.jsonl")
	job, err := runner.NewJob("fig4", experiments.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := runner.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	err = st.Append(runner.Record{
		ID: job.ID(), Experiment: job.Experiment, Options: job.Options,
		Status: runner.StatusDone, Elapsed: 1, Result: json.RawMessage(`{"x":1}`),
	})
	st.Close()
	if err != nil {
		t.Fatal(err)
	}

	ts, _, _ := newTestServer(t, storePath)
	var got runner.JobState
	if code := getJSON(t, ts.URL+"/jobs/"+job.ID(), &got); code != http.StatusOK {
		t.Fatalf("get = %d", code)
	}
	if got.Status != runner.StatusDone || string(got.Result) != `{"x":1}` {
		t.Fatalf("store-only job = %+v", got)
	}
}

func TestDaemonRejectsBadRequests(t *testing.T) {
	ts, _, _ := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"))
	cases := []string{
		`{`,
		`{}`,
		`{"experiment":"fig99"}`,
		`{"experiment":"fig4","options":{"backend":"quantum"}}`,
		`{"experiment":"fig4","sweep":{"experiments":["fig6"]}}`,
		`{"options":{"quick":true},"sweep":{"experiments":["fig6"]}}`,
		`{"sweep":{"experiments":[]}}`,
		`{"experiment":"fig4"}{"experiment":"table1"}`,
		`{"experiment":"fig4","options":{"quick":true,"backend":"parallel","workers":100000000}}`,
	}
	for _, body := range cases {
		if resp, _ := postJSON(t, ts.URL+"/jobs", body); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: status = %d, want 400", body, resp.StatusCode)
		}
	}
	if code := getJSON(t, ts.URL+"/jobs/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", code)
	}
}

func TestDaemonListFilters(t *testing.T) {
	ts, _, _ := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"))
	postJSON(t, ts.URL+"/jobs", `{"sweep":{"experiments":["fig4","table1"],"quick":[true]}}`)
	waitDone(t, ts.URL, 2)
	var list jobsResponse
	getJSON(t, ts.URL+"/jobs?experiment=fig4", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].Experiment != "fig4" {
		t.Fatalf("filtered list = %+v", list.Jobs)
	}
	if len(list.Jobs[0].Result) != 0 {
		t.Fatal("list view leaked result payloads")
	}
}

// TestDaemonStatusFilter pins the ?status= polling path long churn sweeps
// rely on: completed jobs are filterable without downloading the full
// list, an empty match is an empty list (not an error), and an unknown
// status is a loud 400 — a typo silently matching nothing would read as
// "sweep finished".
func TestDaemonStatusFilter(t *testing.T) {
	ts, _, _ := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"))
	postJSON(t, ts.URL+"/jobs", `{"sweep":{"experiments":["fig4","table1"],"quick":[true]}}`)
	waitDone(t, ts.URL, 2)
	var list jobsResponse
	if code := getJSON(t, ts.URL+"/jobs?status=done", &list); code != http.StatusOK {
		t.Fatalf("status=done = %d, want 200", code)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("done jobs = %d, want 2", len(list.Jobs))
	}
	for _, j := range list.Jobs {
		if j.Status != runner.StatusDone {
			t.Fatalf("status filter leaked %+v", j)
		}
	}
	list = jobsResponse{}
	if code := getJSON(t, ts.URL+"/jobs?status=failed", &list); code != http.StatusOK {
		t.Fatalf("status=failed = %d, want 200", code)
	}
	if len(list.Jobs) != 0 {
		t.Fatalf("failed jobs = %+v, want none", list.Jobs)
	}
	if code := getJSON(t, ts.URL+"/jobs?status=finished", nil); code != http.StatusBadRequest {
		t.Fatalf("unknown status = %d, want 400", code)
	}
	// Status and experiment filters compose.
	list = jobsResponse{}
	getJSON(t, ts.URL+"/jobs?status=done&experiment=table1", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].Experiment != "table1" {
		t.Fatalf("composed filter = %+v", list.Jobs)
	}
}

// deleteJob issues DELETE /jobs/{id} and returns status code, body, and
// the Retry-After header (useful on other methods' error paths too).
func deleteJob(t *testing.T, url string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// TestDaemonCancelEndpoint exercises DELETE /jobs/{id} against every job
// phase: unknown (404), queued (202, terminal immediately), running (202,
// terminal once the executor sees the canceled context), and already
// terminal (409 with the job's final state).
func TestDaemonCancelEndpoint(t *testing.T) {
	bail := make(chan struct{})
	exec := runner.WithExecutor(func(ctx context.Context, j runner.Job) (json.RawMessage, error) {
		select {
		case <-ctx.Done():
		case <-bail: // a test failure must not park Close forever
		}
		return nil, runner.ErrCanceled
	})
	ts, _, _ := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"), exec)
	t.Cleanup(func() { close(bail) }) // LIFO: runs before the server's stop

	// 4 slots: seeds 1-4 run (parked on ctx), seed 5 queues.
	resp, body := postJSON(t, ts.URL+"/jobs",
		`{"sweep":{"experiments":["fig4"],"seeds":[1,2,3,4,5],"quick":[true]}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}

	if code, _ := deleteJob(t, ts.URL+"/jobs/no-such-job"); code != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d, want 404", code)
	}

	var queued jobsResponse
	waitStatus := func(status string, want int) jobsResponse {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			var list jobsResponse
			getJSON(t, ts.URL+"/jobs?status="+status, &list)
			if len(list.Jobs) >= want {
				return list
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %d %s jobs", want, status)
		return jobsResponse{}
	}
	queued = waitStatus("queued", 1)

	// Queued job: canceled synchronously, never executes.
	qid := queued.Jobs[0].ID
	code, body := deleteJob(t, ts.URL+"/jobs/"+qid)
	if code != http.StatusAccepted {
		t.Fatalf("cancel queued = %d: %s", code, body)
	}
	var got runner.JobState
	if getJSON(t, ts.URL+"/jobs/"+qid, &got); got.Status != runner.StatusCanceled {
		t.Fatalf("queued job after cancel = %+v, want canceled", got)
	}

	// Terminal job: a second DELETE is a conflict carrying the final state.
	code, body = deleteJob(t, ts.URL+"/jobs/"+qid)
	if code != http.StatusConflict || !strings.Contains(string(body), `"canceled"`) {
		t.Fatalf("cancel terminal = %d: %s, want 409 with final state", code, body)
	}

	// Running jobs: DELETE is accepted immediately; each finalizes canceled
	// once its executor observes the context.
	running := waitStatus("running", 4)
	for _, j := range running.Jobs {
		if code, body := deleteJob(t, ts.URL+"/jobs/"+j.ID); code != http.StatusAccepted {
			t.Fatalf("cancel running %s = %d: %s", j.ID, code, body)
		}
	}
	waitStatus("canceled", 5)
}

// TestDaemonQueueBackpressure pins admission control: once running slots
// and the bounded queue are full, POST /jobs answers 429 with Retry-After
// and reports the partial batch, and the same submission succeeds after
// the backlog drains.
func TestDaemonQueueBackpressure(t *testing.T) {
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	gate := runner.WithExecutor(func(_ context.Context, j runner.Job) (json.RawMessage, error) {
		started <- struct{}{}
		<-release
		return json.RawMessage(`{}`), nil
	})
	ts, _, _ := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"),
		gate, runner.WithQueueLimit(2))
	t.Cleanup(releaseOnce) // LIFO: unblock executors before the server's stop

	// Fill all 4 slots first — one at a time so the bounded queue (which
	// counts only waiting jobs) stays empty — then both queue positions.
	submitSeed := func(seed int) (*http.Response, []byte) {
		return postJSON(t, ts.URL+"/jobs",
			fmt.Sprintf(`{"experiment":"fig4","options":{"quick":true,"seed":%d}}`, seed))
	}
	for seed := 1; seed <= 4; seed++ {
		if resp, body := submitSeed(seed); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill submit %d = %d: %s", seed, resp.StatusCode, body)
		}
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatalf("executor for seed %d never started", seed)
		}
	}
	for seed := 5; seed <= 6; seed++ {
		if resp, body := submitSeed(seed); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queue submit %d = %d: %s", seed, resp.StatusCode, body)
		}
	}

	over := `{"experiment":"fig4","options":{"quick":true,"seed":7}}`
	resp, body := postJSON(t, ts.URL+"/jobs", over)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d: %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if !strings.Contains(string(body), "queue is full") {
		t.Fatalf("429 body = %s, want a queue-full error", body)
	}

	// Drain and retry: the refused job left no trace, so resubmission is
	// clean and runs to completion.
	releaseOnce()
	waitDone(t, ts.URL, 6)
	resp, body = postJSON(t, ts.URL+"/jobs", over)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("retry submit = %d: %s", resp.StatusCode, body)
	}
	waitDone(t, ts.URL, 7)
}

// TestDaemonWorkersEndpoint: the control daemon lists its registered
// workers; a worker-less daemon answers with an empty list, not an error.
func TestDaemonWorkersEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"))
	var out struct {
		Workers []fed.WorkerInfo `json:"workers"`
	}
	if code := getJSON(t, ts.URL+"/workers", &out); code != http.StatusOK {
		t.Fatalf("workers = %d", code)
	}
	if len(out.Workers) != 0 {
		t.Fatalf("workers = %+v, want none", out.Workers)
	}
	w, err := fed.Join(fed.WorkerConfig{ControlURL: ts.URL, Name: "probe", Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if code := getJSON(t, ts.URL+"/workers", &out); code != http.StatusOK || len(out.Workers) != 1 {
		t.Fatalf("workers after join = %d %+v, want one", code, out.Workers)
	}
	if out.Workers[0].Name != "probe" || out.Workers[0].Slots != 1 {
		t.Fatalf("worker info = %+v", out.Workers[0])
	}
}
