// Command aergiad is the experiment service daemon: it accepts experiment
// jobs and parameter sweeps over HTTP, schedules them on a bounded set of
// worker slots (all compute shares the global tensor worker pool), and
// persists every result to an append-only JSONL store. Restarting the
// daemon on the same store resumes interrupted sweeps without recomputing
// completed jobs.
//
// Usage:
//
//	aergiad -addr :8080 -store aergiad.jsonl -jobs 2
//
// Every daemon is also a federation control plane (DESIGN.md §13): worker
// daemons started with -worker join it over HTTP, pull job leases over the
// rpc transport, and stream results back. A control that should never
// execute locally runs with -jobs -1:
//
//	aergiad -addr :8080 -store aergiad.jsonl -jobs -1   # control
//	aergiad -worker -join http://ctrl:8080 -name w1     # workers
//
// API:
//
//	POST /jobs        {"experiment":"fig6","options":{"quick":true,"seed":2}}
//	POST /jobs        {"sweep":{"experiments":["fig6","fig7"],"seeds":[1,2,3]}}
//	                  (429 + Retry-After when the queue is at -queue-max)
//	GET  /jobs        list jobs; ?status=done&experiment=fig6 filters
//	GET  /jobs/{id}   one job with its result record
//	GET  /jobs/{id}/events  live round progress over SSE ("event: round",
//	                  one obs.RoundEvent JSON per data line; "event: done"
//	                  when the job finishes)
//	DELETE /jobs/{id} cancel a job wherever it is (queued, running locally,
//	                  or leased to a worker)
//	POST /workers/join   worker bootstrap (identity + rpc address)
//	GET  /workers     registered workers with lease counts
//	GET  /healthz     liveness + queue counters
//	GET  /metrics     Prometheus text exposition (runner queue, per-worker
//	                  federation counters, bandwidth ledger, ...)
//	GET  /debug/flight   recent span/fault events from the flight recorder (JSON)
//	GET  /debug/pprof/*  runtime profiles (opt-in via -pprof)
//
// SIGQUIT dumps the flight recorder and all goroutine stacks to stderr and
// exits — the post-mortem for a wedged run.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"aergia/internal/experiments"
	"aergia/internal/fed"
	"aergia/internal/obs"
	"aergia/internal/runner"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		store     = flag.String("store", "aergiad.jsonl", "append-only JSONL result store path")
		jobs      = flag.Int("jobs", 0, "concurrent job slots (0 = GOMAXPROCS, -1 = none: pure control plane)")
		queueMax  = flag.Int("queue-max", 0, "max queued jobs before POST /jobs returns 429 (0 = unbounded)")
		heartbeat = flag.Duration("heartbeat", 2*time.Second, "federation heartbeat interval")
		misses    = flag.Int("misses", 3, "missed heartbeats before a worker's leases are requeued")
		rpcAddr   = flag.String("rpc-addr", "127.0.0.1:0", "federation rpc listen address")
		worker    = flag.Bool("worker", false, "run as a worker daemon: join a control daemon and execute its leases")
		join      = flag.String("join", "", "control daemon base URL to join (worker mode), e.g. http://host:8080")
		name      = flag.String("name", "", "worker display name (default host-pid)")
		withPprof = flag.Bool("pprof", false, "serve /debug/pprof/* runtime profiles")
	)
	flag.Parse()
	var err error
	if *worker {
		err = serveWorker(*join, *name, *rpcAddr, *jobs)
	} else {
		err = serve(daemonConfig{
			addr: *addr, store: *store, jobs: *jobs, queueMax: *queueMax,
			heartbeat: *heartbeat, misses: *misses, rpcAddr: *rpcAddr,
			pprof: *withPprof,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aergiad:", err)
		os.Exit(1)
	}
}

// serveWorker runs the daemon in worker mode: no HTTP API and no store —
// it joins the control daemon at joinURL, executes the leases it is
// granted, and exits on SIGINT/SIGTERM (telling the control to requeue
// anything unfinished) or when the control dismisses it.
func serveWorker(joinURL, name, rpcAddr string, slots int) error {
	if joinURL == "" {
		return errors.New("-worker requires -join <control base URL>")
	}
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if slots < 0 {
		return errors.New("-jobs -1 makes no sense for a worker (it exists to execute)")
	}
	w, err := fed.Join(fed.WorkerConfig{ControlURL: joinURL, Name: name, Addr: rpcAddr, Slots: slots})
	if err != nil {
		return err
	}
	log.Printf("aergiad: worker %s (node %d) joined %s, rpc %s", w.Name(), w.ID(), joinURL, w.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	select {
	case <-quit:
		log.Printf("aergiad: SIGQUIT, dumping flight recorder and stacks")
		dumpPostMortem()
		os.Exit(2)
		return nil
	case <-w.Lost():
		if cerr := w.Close(); cerr != nil {
			_ = cerr
		}
		return errors.New("dismissed by the control daemon (it restarted?); rejoin")
	case <-ctx.Done():
		log.Printf("aergiad: worker shutting down")
		return w.Close()
	}
}

// daemonConfig is the flag set of the default (control) mode.
type daemonConfig struct {
	addr      string
	store     string
	jobs      int
	queueMax  int
	heartbeat time.Duration
	misses    int
	rpcAddr   string
	pprof     bool
}

func serve(cfg daemonConfig) error {
	st, err := runner.Open(cfg.store)
	if err != nil {
		return err
	}
	defer st.Close()
	r := runner.New(st, cfg.jobs, runner.WithQueueLimit(cfg.queueMax))
	// Bounded shutdown: give in-flight jobs a grace period, then exit
	// anyway — unfinished work was never persisted, so the next daemon
	// life resumes it from the store. Waiting out a full-scale experiment
	// here would hold SIGTERM hostage for minutes (and get the process
	// SIGKILLed by a supervisor regardless).
	defer func() {
		closed := make(chan struct{})
		go func() { r.Close(); close(closed) }()
		select {
		case <-closed:
		case <-time.After(30 * time.Second):
			log.Printf("aergiad: abandoning in-flight jobs after 30s grace")
		}
	}()
	log.Printf("aergiad: store %s (%d records, %d lines skipped), %d job slots",
		st.Path(), st.Len(), st.Skipped(), r.Slots())

	ctrl, err := fed.NewControl(r, fed.ControlConfig{
		Addr: cfg.rpcAddr, Heartbeat: cfg.heartbeat, Misses: cfg.misses,
	})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := ctrl.Close(); cerr != nil {
			log.Printf("aergiad: control close: %v", cerr)
		}
	}()
	log.Printf("aergiad: federation control on rpc %s (heartbeat %s, %d misses)",
		ctrl.Addr(), cfg.heartbeat, cfg.misses)

	srv := &http.Server{
		Addr:    cfg.addr,
		Handler: newServer(r, st, ctrl, cfg.pprof),
		// Requests and responses are small JSON; generous deadlines still
		// stop a slow or stalled client from pinning a connection forever.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// SIGQUIT is the post-mortem trigger: installing a handler replaces
	// Go's default stack dump, so re-emit the stacks ourselves after the
	// flight recorder and exit with the conventional status.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		<-quit
		log.Printf("aergiad: SIGQUIT, dumping flight recorder and stacks")
		dumpPostMortem()
		os.Exit(2)
	}()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("aergiad: listening on %s", cfg.addr)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Printf("aergiad: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// server is the HTTP facade over a runner, its store, and (optionally)
// the federation control plane.
type server struct {
	runner *runner.Runner
	store  *runner.Store
	ctrl   *fed.Control
	start  time.Time
}

// newServer builds the daemon's HTTP handler; split from serve so tests
// can mount it on httptest servers. ctrl may be nil (a runner-only test
// server): the federation endpoints then report the control as absent and
// DELETE falls back to local cancellation. The pprof endpoints are
// opt-in: the daemon may face a shared network, and profiles leak more
// than metrics.
func newServer(r *runner.Runner, st *runner.Store, ctrl *fed.Control, withPprof bool) http.Handler {
	s := &server{runner: r, store: st, ctrl: ctrl, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /metrics", obs.Handler(obs.Default))
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /workers/join", s.handleJoin)
	mux.HandleFunc("GET /workers", s.handleWorkers)
	mux.HandleFunc("GET /debug/flight", s.handleFlight)
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	counts := map[runner.Status]int{}
	for _, st := range s.runner.List() {
		counts[st.Status]++
	}
	body := map[string]any{
		"status":    "ok",
		"uptime_ns": time.Since(s.start),
		"slots":     s.runner.Slots(),
		"jobs":      counts,
		"store":     s.store.Path(),
		"records":   s.store.Len(),
	}
	if s.ctrl != nil {
		body["workers"] = len(s.ctrl.Workers())
		body["leases"] = s.runner.LeaseCount()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleJoin bootstraps a worker daemon into the federation.
func (s *server) handleJoin(w http.ResponseWriter, req *http.Request) {
	if s.ctrl == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("federation control plane disabled"))
		return
	}
	s.ctrl.HandleJoin(w, req)
}

// handleWorkers lists the registered worker daemons.
func (s *server) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	workers := []fed.WorkerInfo{}
	if s.ctrl != nil {
		workers = append(workers, s.ctrl.Workers()...)
	}
	writeJSON(w, http.StatusOK, map[string]any{"workers": workers})
}

// handleCancel is DELETE /jobs/{id}: cancellation wherever the job is —
// dropped from the queue, context-canceled locally, or propagated to the
// owning worker. 404 for unknown IDs, 409 for already-terminal jobs.
func (s *server) handleCancel(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	var (
		st  runner.JobState
		err error
	)
	if s.ctrl != nil {
		st, err = s.ctrl.CancelJob(id)
	} else {
		st, _, err = s.runner.Cancel(id)
	}
	st.Result = nil
	switch {
	case errors.Is(err, runner.ErrUnknownJob):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, runner.ErrJobFinished):
		writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error(), "job": st})
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	default:
		// Accepted, not completed: a running job finalizes asynchronously
		// when its executor notices the canceled context.
		writeJSON(w, http.StatusAccepted, map[string]any{"job": st})
	}
}

// submitRequest is the POST /jobs body: exactly one of a single job
// (experiment + options) or a sweep grid.
type submitRequest struct {
	Experiment string              `json:"experiment,omitempty"`
	Options    experiments.Options `json:"options,omitzero"`
	Sweep      *runner.Sweep       `json:"sweep,omitempty"`
}

func (s *server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var body submitRequest
	// A submission is a job spec or a sweep grid — kilobytes at most;
	// bound the untrusted body so a streamed giant one cannot balloon the
	// daemon's memory.
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, errors.New("trailing content after the request object"))
		return
	}
	var jobs []runner.Job
	switch {
	case body.Sweep != nil && body.Experiment != "":
		writeError(w, http.StatusBadRequest, errors.New("give either experiment or sweep, not both"))
		return
	case body.Sweep != nil && body.Options != (experiments.Options{}):
		// Same contract as the CLI's -sweep flag conflict: silently
		// dropping the options would run the wrong grid.
		writeError(w, http.StatusBadRequest, errors.New("a sweep defines its own options axes; drop the options field"))
		return
	case body.Sweep != nil:
		expanded, err := body.Sweep.Expand()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		jobs = expanded
	case body.Experiment != "":
		job, err := runner.NewJob(body.Experiment, body.Options)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		jobs = []runner.Job{job}
	default:
		writeError(w, http.StatusBadRequest, errors.New("missing experiment or sweep"))
		return
	}
	states, err := s.runner.SubmitAll(jobs)
	for i := range states {
		states[i].Result = nil // fetch results via GET /jobs/{id}
	}
	if err != nil {
		if errors.Is(err, runner.ErrQueueFull) {
			// Backpressure, not failure: the client should retry once the
			// workers drain the queue. Jobs admitted before the bound hit
			// are reported; resubmitting the whole batch later is
			// idempotent and picks up exactly the refused remainder.
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error": err.Error(), "jobs": states,
			})
			return
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"jobs": states})
}

func (s *server) handleList(w http.ResponseWriter, req *http.Request) {
	status := req.URL.Query().Get("status")
	if status != "" {
		// Pollers of long churn sweeps filter on status; a typo silently
		// matching nothing would read as "all jobs done", so unknown
		// statuses are a loud 400 instead.
		switch runner.Status(status) {
		case runner.StatusQueued, runner.StatusRunning, runner.StatusLeased,
			runner.StatusDone, runner.StatusFailed, runner.StatusCanceled:
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf(
				"unknown status %q (allowed: %s, %s, %s, %s, %s, %s)", status,
				runner.StatusQueued, runner.StatusRunning, runner.StatusLeased,
				runner.StatusDone, runner.StatusFailed, runner.StatusCanceled))
			return
		}
	}
	experiment := req.URL.Query().Get("experiment")
	var out []runner.JobState
	for _, st := range s.runner.List() {
		if status != "" && string(st.Status) != status {
			continue
		}
		if experiment != "" && st.Experiment != experiment {
			continue
		}
		st.Result = nil // list view stays light; results via GET /jobs/{id}
		out = append(out, st)
	}
	if out == nil {
		out = []runner.JobState{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *server) handleGet(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	if st, ok := s.runner.Result(id); ok {
		writeJSON(w, http.StatusOK, st)
		return
	}
	// Jobs completed in an earlier daemon life live in the store only.
	if rec, ok := s.store.Get(id); ok {
		writeJSON(w, http.StatusOK, rec)
		return
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
}

// handleEvents streams a job's live round progress as Server-Sent Events:
// one "event: round" with an obs.RoundEvent JSON body per completed round
// (replaying rounds already done), a comment heartbeat while rounds are in
// flight, and "event: done" when the job ends.
func (s *server) handleEvents(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	events, cancel, err := s.runner.Subscribe(id, 64)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	defer cancel()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	// The server's ReadTimeout/WriteTimeout are sized for small JSON
	// bodies; a live stream legitimately outlives both, so lift the
	// deadlines for this connection only. The read deadline matters even
	// though the stream only writes: net/http keeps reading the connection
	// in the background to detect client aborts, and when the read
	// deadline (armed at accept time from ReadTimeout) expires, that
	// background read fails and cancels the request context — killing
	// every SSE stream mid-flight at the same age regardless of activity.
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Time{})
	_ = rc.SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-req.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case ev, open := <-events:
			if !open {
				fmt.Fprint(w, "event: done\ndata: {}\n\n")
				flusher.Flush()
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: round\ndata: %s\n\n", data); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// handleFlight serves the flight recorder's recent span/fault events — the
// always-on diagnostic ring every traced run feeds.
func (s *server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	events := obs.FlightDefault.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{"count": len(events), "events": events})
}

// dumpPostMortem writes the flight recorder and all goroutine stacks to
// stderr.
func dumpPostMortem() {
	obs.FlightDefault.Dump(os.Stderr)
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	_, _ = os.Stderr.Write(buf[:n])
}
