package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aergia/internal/fed"
	"aergia/internal/runner"
)

// newControlServer starts a pure control-plane daemon (no local slots):
// jobs only make progress when a worker joins and pulls them.
func newControlServer(t *testing.T, storePath string) (*httptest.Server, *runner.Runner) {
	t.Helper()
	st, err := runner.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	r := runner.New(st, -1)
	ctrl, err := fed.NewControl(r, fed.ControlConfig{Heartbeat: 40 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(r, st, ctrl, false))
	t.Cleanup(func() {
		ts.Close()
		if err := ctrl.Close(); err != nil {
			t.Errorf("control close: %v", err)
		}
		r.Close()
		st.Close()
	})
	return ts, r
}

// TestDaemonFederationEndToEnd drives the full HTTP surface of a
// federated deployment: a pure-control daemon accepts a sweep, two joined
// workers drain it exactly once, /workers reports them, DELETE of a
// leased job propagates over the wire, and the control's /metrics scrape
// carries per-worker lease counters.
func TestDaemonFederationEndToEnd(t *testing.T) {
	ts, _ := newControlServer(t, filepath.Join(t.TempDir(), "store.jsonl"))

	exec := func(ctx context.Context, j runner.Job) (json.RawMessage, error) {
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			return nil, runner.ErrCanceled
		}
		return json.RawMessage(fmt.Sprintf(`{"job":%q}`, j.ID())), nil
	}
	for _, name := range []string{"w1", "w2"} {
		w, err := fed.Join(fed.WorkerConfig{ControlURL: ts.URL, Name: name, Slots: 2, Execute: exec})
		if err != nil {
			t.Fatal(err)
		}
		defer w.Close()
	}
	var workers struct {
		Workers []fed.WorkerInfo `json:"workers"`
	}
	if code := getJSON(t, ts.URL+"/workers", &workers); code != http.StatusOK || len(workers.Workers) != 2 {
		t.Fatalf("workers = %d %+v, want both registered", code, workers.Workers)
	}

	resp, body := postJSON(t, ts.URL+"/jobs",
		`{"sweep":{"experiments":["fig4"],"seeds":[1,2,3,4,5,6,7,8],"quick":[true]}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	done := waitDone(t, ts.URL, 8)
	perWorker := map[string]int{}
	for _, j := range done {
		var got runner.JobState
		getJSON(t, ts.URL+"/jobs/"+j.ID, &got)
		if got.Worker == "" {
			t.Fatalf("job %s has no worker attribution: %+v", j.ID, got)
		}
		perWorker[got.Worker]++
	}
	if len(perWorker) != 2 {
		t.Fatalf("work went to %v, want both workers", perWorker)
	}

	// Cancel a job leased to a worker: the DELETE must cross the wire and
	// finalize the job canceled on the control.
	resp, body = postJSON(t, ts.URL+"/jobs",
		`{"experiment":"fig6","options":{"quick":true,"seed":99}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit long job = %d: %s", resp.StatusCode, body)
	}
	var submitted jobsResponse
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	id := submitted.Jobs[0].ID
	deadline := time.Now().Add(10 * time.Second)
	for {
		var got runner.JobState
		getJSON(t, ts.URL+"/jobs/"+id, &got)
		if got.Status == runner.StatusLeased {
			break
		}
		if got.Status == runner.StatusDone || time.Now().After(deadline) {
			t.Fatalf("job never observed leased: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code, body := deleteJob(t, ts.URL+"/jobs/"+id); code != http.StatusAccepted {
		t.Fatalf("cancel leased = %d: %s", code, body)
	}
	for {
		var got runner.JobState
		getJSON(t, ts.URL+"/jobs/"+id, &got)
		if got.Status == runner.StatusCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled job never finalized: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The control-side scrape attributes leases per worker.
	metricsResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer metricsResp.Body.Close()
	raw, err := io.ReadAll(metricsResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	scrape := string(raw)
	for _, want := range []string{
		`aergia_fed_leases_total{worker="`,
		"aergia_fed_workers 2",
	} {
		if !strings.Contains(scrape, want) {
			t.Fatalf("metrics scrape missing %q:\n%s", want, scrape)
		}
	}
}
