package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"aergia/internal/obs"
	"aergia/internal/runner"
)

// TestDaemonEventsSSE pins the live-stream contract of
// GET /jobs/{id}/events: a consumer attached before the job runs receives
// one "event: round" per published round (as obs.RoundEvent JSON) and an
// "event: done" terminator when the job finishes.
func TestDaemonEventsSSE(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	exec := func(j runner.Job) (json.RawMessage, error) {
		close(started)
		<-release
		j.Options.Events.Publish(obs.RoundEvent{Run: 9, Round: 1, Accuracy: 0.25, Cohort: 4})
		j.Options.Events.Publish(obs.RoundEvent{Run: 9, Round: 2, Accuracy: 0.5, Cohort: 4, Straggler: 3})
		return json.RawMessage(`{}`), nil
	}
	ts, _, _ := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"),
		runner.WithExecutor(exec))

	resp, body := postJSON(t, ts.URL+"/jobs", `{"experiment":"fig4","options":{"quick":true}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var submitted jobsResponse
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	id := submitted.Jobs[0].ID

	stream, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", stream.StatusCode)
	}
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	<-started
	close(release)

	// Read SSE frames until the done event; the body closes after it.
	var names []string
	var rounds []obs.RoundEvent
	sc := bufio.NewScanner(stream.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			names = append(names, event)
		case strings.HasPrefix(line, "data: ") && event == "round":
			var ev obs.RoundEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad round payload %q: %v", line, err)
			}
			rounds = append(rounds, ev)
		}
		if event == "done" && line == "" {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := []string{"round", "round", "done"}; strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("event sequence = %v, want %v", names, want)
	}
	if len(rounds) != 2 || rounds[0].Round != 1 || rounds[1].Round != 2 ||
		rounds[1].Straggler != 3 || rounds[1].Cohort != 4 {
		t.Fatalf("round payloads = %+v", rounds)
	}

	waitDone(t, ts.URL, 1)

	// After the job is done the stream replays history and closes at once.
	replay, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Body.Close()
	var buf strings.Builder
	sc2 := bufio.NewScanner(replay.Body)
	for sc2.Scan() {
		buf.WriteString(sc2.Text() + "\n")
	}
	if out := buf.String(); strings.Count(out, "event: round") != 2 ||
		!strings.Contains(out, "event: done") {
		t.Fatalf("replay stream:\n%s", out)
	}

	// Unknown jobs are a 404, not a hung stream.
	missing, err := http.Get(ts.URL + "/jobs/no-such-job/events")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events = %d, want 404", missing.StatusCode)
	}
}

// TestDaemonFlightEndpoint: GET /debug/flight serves the process-wide
// flight ring as JSON.
func TestDaemonFlightEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"))

	// The ring is process-global; make sure at least one event of ours is
	// in it regardless of what other tests recorded.
	obs.FlightDefault.RecordSpan(obs.Span{Trace: 777, ID: 1, From: -1, To: 0})

	var got struct {
		Count  int               `json:"count"`
		Events []obs.FlightEvent `json:"events"`
	}
	if code := getJSON(t, ts.URL+"/debug/flight", &got); code != http.StatusOK {
		t.Fatalf("flight = %d", code)
	}
	if got.Count == 0 || len(got.Events) != got.Count {
		t.Fatalf("flight = count %d with %d events", got.Count, len(got.Events))
	}
	var found bool
	for _, ev := range got.Events {
		if ev.Class == "span" && ev.Trace == 777 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("flight snapshot is missing the recorded span (count %d)", got.Count)
	}
}
