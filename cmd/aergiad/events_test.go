package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aergia/internal/obs"
	"aergia/internal/runner"
)

// TestDaemonEventsSSE pins the live-stream contract of
// GET /jobs/{id}/events: a consumer attached before the job runs receives
// one "event: round" per published round (as obs.RoundEvent JSON) and an
// "event: done" terminator when the job finishes.
func TestDaemonEventsSSE(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	exec := func(_ context.Context, j runner.Job) (json.RawMessage, error) {
		close(started)
		<-release
		j.Options.Events.Publish(obs.RoundEvent{Run: 9, Round: 1, Accuracy: 0.25, Cohort: 4})
		j.Options.Events.Publish(obs.RoundEvent{Run: 9, Round: 2, Accuracy: 0.5, Cohort: 4, Straggler: 3})
		return json.RawMessage(`{}`), nil
	}
	ts, _, _ := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"),
		runner.WithExecutor(exec))

	resp, body := postJSON(t, ts.URL+"/jobs", `{"experiment":"fig4","options":{"quick":true}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var submitted jobsResponse
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	id := submitted.Jobs[0].ID

	stream, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", stream.StatusCode)
	}
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	<-started
	close(release)

	// Read SSE frames until the done event; the body closes after it.
	var names []string
	var rounds []obs.RoundEvent
	sc := bufio.NewScanner(stream.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			names = append(names, event)
		case strings.HasPrefix(line, "data: ") && event == "round":
			var ev obs.RoundEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad round payload %q: %v", line, err)
			}
			rounds = append(rounds, ev)
		}
		if event == "done" && line == "" {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := []string{"round", "round", "done"}; strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("event sequence = %v, want %v", names, want)
	}
	if len(rounds) != 2 || rounds[0].Round != 1 || rounds[1].Round != 2 ||
		rounds[1].Straggler != 3 || rounds[1].Cohort != 4 {
		t.Fatalf("round payloads = %+v", rounds)
	}

	waitDone(t, ts.URL, 1)

	// After the job is done the stream replays history and closes at once.
	replay, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Body.Close()
	var buf strings.Builder
	sc2 := bufio.NewScanner(replay.Body)
	for sc2.Scan() {
		buf.WriteString(sc2.Text() + "\n")
	}
	if out := buf.String(); strings.Count(out, "event: round") != 2 ||
		!strings.Contains(out, "event: done") {
		t.Fatalf("replay stream:\n%s", out)
	}

	// Unknown jobs are a 404, not a hung stream.
	missing, err := http.Get(ts.URL + "/jobs/no-such-job/events")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job events = %d, want 404", missing.StatusCode)
	}
}

// TestDaemonFlightEndpoint: GET /debug/flight serves the process-wide
// flight ring as JSON.
func TestDaemonFlightEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, filepath.Join(t.TempDir(), "store.jsonl"))

	// The ring is process-global; make sure at least one event of ours is
	// in it regardless of what other tests recorded.
	obs.FlightDefault.RecordSpan(obs.Span{Trace: 777, ID: 1, From: -1, To: 0})

	var got struct {
		Count  int               `json:"count"`
		Events []obs.FlightEvent `json:"events"`
	}
	if code := getJSON(t, ts.URL+"/debug/flight", &got); code != http.StatusOK {
		t.Fatalf("flight = %d", code)
	}
	if got.Count == 0 || len(got.Events) != got.Count {
		t.Fatalf("flight = count %d with %d events", got.Count, len(got.Events))
	}
	var found bool
	for _, ev := range got.Events {
		if ev.Class == "span" && ev.Trace == 777 {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("flight snapshot is missing the recorded span (count %d)", got.Count)
	}
}

// TestEventsStreamSurvivesReadTimeout is the regression test for the SSE
// deadline bug: the server arms each connection's *read* deadline from
// ReadTimeout at accept time, and net/http's background read (the one
// that watches for client aborts) trips it even though an SSE stream only
// writes — canceling the request context and killing every live stream at
// the same age. The handler must lift the read deadline as well as the
// write deadline; with a sub-second ReadTimeout, a stream held open for
// several multiples of it must still deliver its rounds and terminator.
func TestEventsStreamSurvivesReadTimeout(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	exec := func(_ context.Context, j runner.Job) (json.RawMessage, error) {
		close(started)
		<-release
		j.Options.Events.Publish(obs.RoundEvent{Round: 1, Accuracy: 0.5})
		return json.RawMessage(`{}`), nil
	}
	st, err := runner.Open(filepath.Join(t.TempDir(), "store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r := runner.New(st, 1, runner.WithExecutor(exec))
	defer r.Close()
	ts := httptest.NewUnstartedServer(newServer(r, st, nil, false))
	ts.Config.ReadTimeout = 150 * time.Millisecond
	ts.Config.WriteTimeout = 150 * time.Millisecond
	ts.Start()
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/jobs", `{"experiment":"fig4","options":{"quick":true}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var submitted jobsResponse
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	id := submitted.Jobs[0].ID

	stream, err := http.Get(ts.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", stream.StatusCode)
	}
	<-started
	// Outlive the server's ReadTimeout several times over while the job is
	// still running and the stream is idle.
	time.Sleep(600 * time.Millisecond)
	close(release)

	var names []string
	sc := bufio.NewScanner(stream.Body)
	var event string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
			names = append(names, event)
		}
		if event == "done" && line == "" {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream died before the job finished (read deadline not lifted?): %v", err)
	}
	if want := "round,done"; strings.Join(names, ",") != want {
		t.Fatalf("event sequence = %v, want %s", names, want)
	}
}

// TestEventsStoreOnlyJob: a job completed in an earlier daemon life is
// known to GET /jobs/{id} via the store — its events endpoint must agree
// that the job exists and serve an immediately-terminated stream instead
// of a 404.
func TestEventsStoreOnlyJob(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "store.jsonl")
	ts1, _, stop1 := newTestServer(t, storePath)
	resp, body := postJSON(t, ts1.URL+"/jobs", `{"experiment":"fig4","options":{"quick":true}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var submitted jobsResponse
	if err := json.Unmarshal(body, &submitted); err != nil {
		t.Fatal(err)
	}
	id := submitted.Jobs[0].ID
	waitDone(t, ts1.URL, 1)
	stop1()

	// Second life: the job lives only in the store (never resubmitted).
	ts2, _, _ := newTestServer(t, storePath)
	if code := getJSON(t, ts2.URL+"/jobs/"+id, nil); code != http.StatusOK {
		t.Fatalf("store-only GET /jobs/{id} = %d", code)
	}
	stream, err := http.Get(ts2.URL + "/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		t.Fatalf("store-only events = %d, want 200 (GET /jobs/{id} knows it)", stream.StatusCode)
	}
	var out strings.Builder
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		out.WriteString(sc.Text() + "\n")
	}
	if s := out.String(); !strings.Contains(s, "event: done") || strings.Contains(s, "event: round") {
		t.Fatalf("store-only stream = %q, want an immediate done and no rounds", s)
	}
}
