package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig1a", "fig6", "fig9", "table1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMissingExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("expected error without -experiment")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-experiment", "fig99"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "table1", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "aergia") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunQuickExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig4", "-quick", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bf%") {
		t.Fatalf("fig4 output:\n%s", buf.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("expected flag parse error")
	}
}
