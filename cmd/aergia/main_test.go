package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"aergia/internal/experiments"
	"aergia/internal/runner"
)

func TestRunList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig1a", "fig6", "fig9", "table1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("list output missing %q:\n%s", want, out)
		}
	}
}

func TestRunMissingExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("expected error without -experiment")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-experiment", "fig99"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "table1", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "aergia") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunQuickExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig4", "-quick", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "bf%") {
		t.Fatalf("fig4 output:\n%s", buf.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestRunBadBackendFailsLoudly(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-experiment", "fig4", "-quick", "-backend", "quantum"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Fatalf("err = %v, want unknown-backend error", err)
	}
}

// TestRunBadTransportFailsLoudly pins the flag-parse-time validation: a
// mistyped -transport fails in one line naming the allowed values, before
// any experiment work starts (no dataset generation, no deep transport
// constructor error).
func TestRunBadTransportFailsLoudly(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-experiment", "fig4", "-quick", "-transport", "carrier-pigeon"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "allowed values: sim, tcp") {
		t.Fatalf("err = %v, want a one-line error listing the allowed transports", err)
	}
	// The check runs even in modes that never construct a transport.
	err = run([]string{"-list", "-transport", "carrier-pigeon"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "allowed values") {
		t.Fatalf("err = %v, want parse-time validation in -list mode too", err)
	}
}

// TestRunBadChaosFailsLoudly pins the same contract for -chaos: a bad spec
// fails at flag-parse time with the accepted keys listed.
func TestRunBadChaosFailsLoudly(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-experiment", "fig4", "-quick", "-chaos", "flux=1"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "keys: churn") {
		t.Fatalf("err = %v, want a one-line error listing the chaos spec keys", err)
	}
	err = run([]string{"-experiment", "fig4", "-quick", "-chaos", "churn=1.5"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "invalid -chaos") {
		t.Fatalf("err = %v, want an out-of-range chaos error", err)
	}
}

// TestRunBadCodecFailsLoudly pins the -codec contract shared with
// -transport and -chaos: a mistyped codec fails at flag-parse time with a
// one-line error naming the allowed values, before any experiment work
// starts — and even in modes that never run an experiment.
func TestRunBadCodecFailsLoudly(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"-experiment", "fig4", "-quick", "-codec", "gzip"},
		{"-experiment", "fig4", "-quick", "-codec", "top-k"},
		{"-list", "-codec", "gzip"},
	} {
		err := run(args, &buf)
		if err == nil || !strings.Contains(err.Error(), "allowed values: none, q8, topk") {
			t.Fatalf("args %v: err = %v, want a one-line error listing the allowed codecs", args, err)
		}
	}
}

// TestRunBadHierFailsLoudly pins the -sample/-tiers contract shared with
// -transport, -chaos, and -codec: out-of-range values fail at flag-parse
// time with a one-line error naming the allowed values, before any
// experiment work starts — and even in modes that never run an experiment.
func TestRunBadHierFailsLoudly(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"-experiment", "fig4", "-quick", "-sample", "1.5"},
		{"-experiment", "fig4", "-quick", "-sample", "-0.1"},
		{"-list", "-sample", "2"},
	} {
		err := run(args, &buf)
		if err == nil || !strings.Contains(err.Error(), "allowed values: 0 through 1") {
			t.Fatalf("args %v: err = %v, want a one-line error naming the sample range", args, err)
		}
	}
	for _, args := range [][]string{
		{"-experiment", "fig4", "-quick", "-tiers", "-3"},
		{"-list", "-tiers", "-1"},
	} {
		err := run(args, &buf)
		if err == nil || !strings.Contains(err.Error(), "allowed values: 0 or more") {
			t.Fatalf("args %v: err = %v, want a one-line error naming the tiers range", args, err)
		}
	}
}

// TestRunHierLandsInRecord checks the -sample/-tiers choice reaches the
// canonical record (and thus the result store's dedup key), while the flat
// default — including the inert -sample 1 — stays collapsed out of the
// encoding, keeping pre-hier records and job IDs byte-identical.
func TestRunHierLandsInRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "table1", "-quick", "-sample", "0.25", "-tiers", "4", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"hier":{"sample":0.25,"tiers":4}`) {
		t.Fatalf("record does not carry the hier options:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-experiment", "table1", "-quick", "-sample", "1", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"hier"`) {
		t.Fatalf("inert hier options leaked into the record:\n%s", buf.String())
	}
}

// TestRunCodecLandsInRecord checks the -codec choice reaches the canonical
// record (and thus the result store's dedup key), while the default stays
// collapsed out of the encoding.
func TestRunCodecLandsInRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "table1", "-quick", "-codec", "topk", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"codec":"topk"`) {
		t.Fatalf("record does not carry the codec:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-experiment", "table1", "-quick", "-codec", "none", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"codec"`) {
		t.Fatalf("default codec leaked into the record:\n%s", buf.String())
	}
}

// TestRunChaosLandsInRecord checks the -chaos plan reaches the canonical
// record (and thus the result store's dedup key).
func TestRunChaosLandsInRecord(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "table1", "-quick", "-chaos", "churn=0.5,rejoin=1", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"chaos"`) || !strings.Contains(buf.String(), `"churn":0.5`) {
		t.Fatalf("record does not carry the chaos plan:\n%s", buf.String())
	}
}

// TestRunTCPTransport exercises the real-RPC binding end to end through the
// CLI: fig4 is compute-only (no FL rounds), so table1 — which is pure
// metadata — is the cheap smoke; the transport still has to normalize and
// land in the record. The heavier tcp path is covered by the fl test suite
// and the examples/distributed CI smoke.
func TestRunTCPTransport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "table1", "-quick", "-transport", "tcp", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"transport":"tcp"`) {
		t.Fatalf("record does not carry the transport:\n%s", buf.String())
	}
}

// TestRunJSONEmitsCanonicalRecords checks that -json prints exactly the
// record bytes the result store persists for the same options.
func TestRunJSONEmitsCanonicalRecords(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-experiment", "fig4", "-quick", "-seed", "3", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimSuffix(buf.String(), "\n")
	if strings.Contains(got, "\n") {
		t.Fatalf("want one JSONL line, got:\n%s", got)
	}
	rec, err := experiments.Run("fig4", experiments.Options{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("-json output diverged from canonical record:\ncli:    %s\ndirect: %s", got, want)
	}
	var decoded struct {
		Experiment string              `json:"experiment"`
		Options    experiments.Options `json:"options"`
		Data       json.RawMessage     `json:"data"`
	}
	if err := json.Unmarshal([]byte(got), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Experiment != "fig4" || decoded.Options.Seed != 3 || !decoded.Options.Quick {
		t.Fatalf("decoded record = %+v", decoded)
	}
	if len(decoded.Data) == 0 {
		t.Fatal("record has no data payload")
	}
}

func TestRunSweepInProcessAndResume(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "sweep.jsonl")
	spec := `{"experiments":["fig4","table1"],"seeds":[1,2],"quick":[true]}`

	var buf bytes.Buffer
	if err := run([]string{"-sweep", spec, "-store", storePath, "-jobs", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sweep: 4 jobs") || strings.Count(out, "done") != 4 {
		t.Fatalf("sweep output:\n%s", out)
	}

	// Re-running the same sweep resumes from the store: all four jobs come
	// back done without recomputation (their persisted records survive).
	st, err := runner.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	before := st.List()
	st.Close()
	if len(before) != 4 {
		t.Fatalf("store has %d records, want 4", len(before))
	}

	buf.Reset()
	if err := run([]string{"-sweep", spec, "-store", storePath, "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("-json sweep printed %d lines, want 4:\n%s", len(lines), buf.String())
	}
	for _, line := range lines {
		var rec runner.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if rec.Status != runner.StatusDone || len(rec.Result) == 0 {
			t.Fatalf("resumed record = %+v", rec)
		}
	}
	st, err = runner.Open(storePath)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 4 || st.Skipped() != 0 {
		t.Fatalf("after resume: %d records, %d skipped — the rerun recomputed", st.Len(), st.Skipped())
	}
}

func TestRunSweepBadSpecs(t *testing.T) {
	for _, args := range [][]string{
		{"-sweep", `{"experiments":}`},
		{"-sweep", `{"experiments":["fig99"]}`},
		{"-sweep", `{"unknown_field":1}`},
		{"-sweep", `@/does/not/exist.json`},
		{"-sweep", `{"experiments":["fig4"]}`, "-experiment", "fig4"},
		{"-sweep", `{"experiments":["fig4"]}`, "-quick"},
		{"-sweep", `{"experiments":["fig4"]}`, "-seed", "5"},
		{"-sweep", `{"experiments":["fig4"]}`, "-chaos", "churn=0.5"},
		{"-sweep", `{"experiments":["fig4"]}`, "-codec", "topk"},
		{"-sweep", `{"experiments":["fig4"]}`, "-sample", "0.5"},
		{"-sweep", `{"experiments":["fig4"]}`, "-tiers", "2"},
		{"-sweep", `{"experiments":["fig4"]} {"experiments":["table1"]}`},
		{"-experiment", "fig4", "-quick", "-store", "x.jsonl"},
		{"-experiment", "fig4", "-quick", "-jobs", "2"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Fatalf("args %v: expected error", args)
		}
	}
}
