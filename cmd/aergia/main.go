// Command aergia regenerates the paper's tables and figures.
//
// Usage:
//
//	aergia -experiment fig6                       # full-scale run of one experiment
//	aergia -experiment all -quick                 # quick pass over every experiment
//	aergia -experiment fig6 -backend parallel     # same numbers, all cores
//	aergia -experiment fig6 -json                 # machine-readable result record
//	aergia -experiment fig4 -transport tcp        # same actors over real loopback TCP
//	aergia -experiment fig-churn -chaos 'churn=0.3,rejoin=1'  # faulted run
//	aergia -experiment fig-bandwidth -quick       # bandwidth-vs-accuracy per codec
//	aergia -experiment fig6 -codec topk           # sparsified update payloads
//	aergia -experiment fig6 -sample 0.25          # 25% client cohort per round
//	aergia -experiment fig6 -sample 0.25 -tiers 4 # + edge aggregation tiers
//	aergia -list                                  # list experiment IDs
//	aergia -sweep '{"experiments":["fig6"],"seeds":[1,2,3]}' -store out.jsonl
//	aergia -sweep @grid.json -store out.jsonl -jobs 4
//	aergia -experiment fig4 -quick -trace-out run.json   # Perfetto-loadable timeline
//	aergia -experiment fig4 -quick -metrics-out metrics.prom  # final metrics scrape + quantile summary
//	aergia -experiment fig4 -quick -spans-out spans.jsonl     # causal message spans as JSONL
//
// The -backend flag selects the compute backend for all model math: serial
// and parallel are the float64 pair, serial32 and parallel32 the float32
// pair (DESIGN.md §9). Within a pair the results are bit-identical under
// the same -seed, so the serial/parallel choice only affects wall-clock
// time; float32 runs are deterministic across reruns but differ from
// float64 by rounding.
//
// The -transport flag selects the message transport the federator/client
// actors run on (DESIGN.md §6): sim is the deterministic virtual-time
// simulator, tcp binds the same cluster to real TCP peers on loopback.
// Model math is identical either way, but tcp runs in wall-clock time —
// a simulated hour takes an hour — so pair it with -quick and the
// timing-light experiments when exercising the real-RPC path, and raise
// -transport-timeout (default 2m per run) for anything longer.
//
// The -chaos flag injects a deterministic fault schedule (client crashes,
// rejoins, compute spikes, lossy links — DESIGN.md §7) into every FL run of
// the experiment. The same spec perturbs both transports; on sim the
// faulted trajectory is exactly reproducible, over tcp event times are
// wall-clock (best-effort). Both -transport and -chaos are validated at
// flag-parse time.
//
// The -codec flag selects the wire codec for model-update payloads in
// every FL run of the experiment (DESIGN.md §8): none ships raw float64
// snapshots, q8 quantizes update deltas to int8 (~8x fewer update bytes),
// topk sparsifies them with client-side residual accumulation (~6x). The
// reduction shows up in the per-run bandwidth counters and, on the sim
// transport's modeled links, in training time. Like -transport and -chaos
// it is validated at flag-parse time.
//
// The -sample and -tiers flags enable the scale-out path (DESIGN.md §11):
// -sample draws a seed-deterministic client cohort each round (a fraction
// in [0, 1]; 0 and 1 both mean everyone participates), and -tiers inserts
// that many edge aggregators between the clients and the root federator,
// so the root combines a handful of pre-aggregated deltas instead of one
// update per client. Unsampled clients stay lazy profiles — no model, no
// shard — until a round first selects them. Like -transport, -chaos, and
// -codec, both are validated at flag-parse time.
//
// -json swaps the text report for one canonical JSON record per experiment
// — the same bytes the result store and the aergiad daemon persist, so
// outputs are diffable across entry points.
//
// -sweep runs a parameter grid through the in-process job runner (the same
// engine behind aergiad): the spec is inline JSON or @file, -jobs bounds
// the concurrent jobs, and -store makes the run resumable — re-running a
// sweep against an existing store computes only the missing cells.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"

	"aergia/internal/chaos"
	"aergia/internal/codec"
	"aergia/internal/experiments"
	"aergia/internal/fl"
	"aergia/internal/hier"
	"aergia/internal/metrics"
	"aergia/internal/obs"
	"aergia/internal/runner"
	"aergia/internal/trace"
)

func main() {
	// SIGQUIT is the wedged-run post-mortem: dump the flight recorder's
	// recent span/fault events plus all goroutine stacks (installing a
	// handler replaces Go's default dump) and exit.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		<-quit
		obs.FlightDefault.Dump(os.Stderr)
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		_, _ = os.Stderr.Write(buf[:n])
		os.Exit(2)
	}()
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aergia:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aergia", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		experiment       = fs.String("experiment", "", "experiment ID (see -list) or 'all'")
		quick            = fs.Bool("quick", false, "use the reduced benchmark-scale configuration")
		seed             = fs.Uint64("seed", 1, "experiment seed")
		backend          = fs.String("backend", "serial", "compute backend: serial, parallel, serial32, or parallel32")
		workers          = fs.Int("workers", 0, "parallel backend worker count (0 = GOMAXPROCS)")
		transport        = fs.String("transport", "sim", "message transport: sim (virtual time) or tcp (real loopback TCP)")
		transportTimeout = fs.Duration("transport-timeout", 0,
			"wall-clock bound per tcp run (0 = 2m default); tcp runs take the real time they simulate")
		chaosSpec = fs.String("chaos", "",
			"fault schedule spec, e.g. 'churn=0.3,rejoin=1,window=2s' (keys: "+chaos.SpecKeys()+")")
		codecName = fs.String("codec", "none",
			"wire codec for model-update payloads: "+codec.Names())
		sample = fs.Float64("sample", 0,
			"per-round client sampling fraction in [0, 1] (0 or 1 = everyone participates)")
		tiers = fs.Int("tiers", 0,
			"edge aggregation tiers between clients and the root federator (0 = flat)")
		jsonOut    = fs.Bool("json", false, "emit canonical JSON result records instead of text reports")
		sweepSpec  = fs.String("sweep", "", "run a sweep grid: inline JSON spec or @file")
		storePath  = fs.String("store", "", "result store for -sweep (JSONL, append-only, resumable)")
		jobs       = fs.Int("jobs", 0, "concurrent jobs for -sweep (0 = GOMAXPROCS)")
		list       = fs.Bool("list", false, "list available experiments")
		metricsOut = fs.String("metrics-out", "",
			"write a final Prometheus text-format metrics dump to this file, plus a p50/p95/p99 quantile summary per latency family to stdout")
		traceOut = fs.String("trace-out", "",
			"write the run's event timeline as Chrome trace-event JSON (Perfetto/chrome://tracing) to this file")
		spansOut = fs.String("spans-out", "",
			"write the run's causal message spans as JSONL (one span per line) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate the enumerated flags right at parse time, so a typo fails in
	// one line here instead of deep inside the transport constructor after
	// datasets were already generated.
	if _, err := fl.CanonicalTransport(*transport); err != nil {
		return fmt.Errorf("invalid -transport %q (allowed values: %s, %s)",
			*transport, fl.TransportSim, fl.TransportTCP)
	}
	if _, err := codec.Canonical(*codecName); err != nil {
		return fmt.Errorf("invalid -codec %q (allowed values: %s)", *codecName, codec.Names())
	}
	if *sample < 0 || *sample > 1 {
		return fmt.Errorf("invalid -sample %v (allowed values: 0 through 1)", *sample)
	}
	if *tiers < 0 {
		return fmt.Errorf("invalid -tiers %d (allowed values: 0 or more)", *tiers)
	}
	hierOpts, err := hier.Options{Sample: *sample, Tiers: *tiers}.Normalized()
	if err != nil {
		return fmt.Errorf("invalid -sample/-tiers: %v", err)
	}
	// ParseSpec errors already name the offending key/value and list the
	// accepted keys where that helps.
	chaosPlan, err := chaos.ParseSpec(*chaosSpec)
	if err != nil {
		return fmt.Errorf("invalid -chaos %q: %v", *chaosSpec, err)
	}
	if *list {
		fmt.Fprintln(out, "available experiments:")
		for _, name := range experiments.Names() {
			fmt.Fprintf(out, "  %s\n", name)
		}
		return nil
	}
	if *sweepSpec != "" {
		// The sweep spec defines its own quick/seed/backend/workers axes;
		// silently ignoring the single-run flags would run the wrong grid.
		var conflicts []string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			// -trace-out and -spans-out conflict too: one trace/span file
			// cannot attribute events across a grid of concurrent runs.
			case "experiment", "quick", "seed", "backend", "workers", "transport", "transport-timeout", "chaos", "codec", "sample", "tiers", "trace-out", "spans-out":
				conflicts = append(conflicts, "-"+f.Name)
			}
		})
		if len(conflicts) > 0 {
			return fmt.Errorf("-sweep defines its own grid; drop %s and put the axes in the spec",
				strings.Join(conflicts, ", "))
		}
		if err := runSweep(*sweepSpec, *storePath, *jobs, *jsonOut, out); err != nil {
			return err
		}
		return dumpMetrics(*metricsOut)
	}
	if *storePath != "" || *jobs != 0 {
		// Persistence and job slots belong to sweep mode; silently ignoring
		// them would tell the user their result was stored when it wasn't.
		return fmt.Errorf("-store and -jobs require -sweep")
	}
	if *experiment == "" {
		return fmt.Errorf("missing -experiment (or -list / -sweep); available: %s",
			strings.Join(experiments.Names(), ", "))
	}
	opt := experiments.Options{
		Quick: *quick, Seed: *seed,
		Backend: *backend, Workers: *workers,
		Transport: *transport, TransportTimeout: *transportTimeout,
		Chaos: chaosPlan, Codec: *codecName,
		Hier: hierOpts,
	}
	if *traceOut != "" {
		opt.Trace = trace.NewLog()
	}
	if *spansOut != "" {
		opt.Spans = obs.NewSpanLog()
	}
	names := []string{*experiment}
	if *experiment == "all" {
		names = experiments.Names()
	}
	for i, name := range names {
		// experiments.Run validates the options, so a bad -backend fails on
		// the first experiment before any work starts.
		rec, err := experiments.Run(name, opt)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
		if *jsonOut {
			line, err := rec.Marshal()
			if err != nil {
				return fmt.Errorf("experiment %s: %w", name, err)
			}
			fmt.Fprintln(out, string(line))
			continue
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		if err := rec.Render(out); err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
	}
	if err := dumpTrace(*traceOut, opt.Trace); err != nil {
		return err
	}
	if err := dumpSpans(*spansOut, opt.Spans); err != nil {
		return err
	}
	return dumpMetricsSummary(*metricsOut, out)
}

// dumpTrace writes the collected timeline as Chrome trace-event JSON.
func dumpTrace(path string, log *trace.Log) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace out: %w", err)
	}
	if err := log.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("trace out: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace out: %w", err)
	}
	return nil
}

// dumpSpans writes the collected causal spans as JSONL.
func dumpSpans(path string, log *obs.SpanLog) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("spans out: %w", err)
	}
	if err := log.WriteJSONL(f); err != nil {
		f.Close()
		return fmt.Errorf("spans out: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("spans out: %w", err)
	}
	return nil
}

// dumpMetrics writes a final scrape of the process registry — the batch
// counterpart of aergiad's GET /metrics.
func dumpMetrics(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics out: %w", err)
	}
	if err := obs.Default.WriteText(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics out: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("metrics out: %w", err)
	}
	return nil
}

// dumpMetricsSummary is dumpMetrics plus the human-readable half: a
// p50/p95/p99 line per histogram family printed to the report writer, so
// "how slow were the links" doesn't require pasting exposition text into a
// Prometheus server.
func dumpMetricsSummary(path string, out io.Writer) error {
	if err := dumpMetrics(path); err != nil {
		return err
	}
	if path == "" {
		return nil
	}
	fmt.Fprintln(out, "\nlatency quantiles (p50/p95/p99 interpolated from histogram buckets):")
	return obs.Default.WriteQuantiles(out)
}

// runSweep drives a parameter grid through the in-process runner — the
// same engine aergiad serves over HTTP.
func runSweep(spec, storePath string, jobs int, jsonOut bool, out io.Writer) error {
	raw := []byte(spec)
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return fmt.Errorf("read sweep spec: %w", err)
		}
		raw = data
	}
	var sweep runner.Sweep
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sweep); err != nil {
		return fmt.Errorf("parse sweep spec: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("parse sweep spec: trailing content after the grid object")
	}
	expanded, err := sweep.Expand()
	if err != nil {
		return err
	}

	var store *runner.Store
	if storePath != "" {
		store, err = runner.Open(storePath)
		if err != nil {
			return err
		}
		defer store.Close()
	}
	r := runner.New(store, jobs)
	defer r.Close()
	if _, err := r.SubmitAll(expanded); err != nil {
		return err
	}
	r.Wait()

	var failed int
	if jsonOut {
		for _, job := range expanded {
			st, _ := r.Result(job.ID())
			line, err := json.Marshal(st)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, string(line))
			if st.Status != runner.StatusDone {
				failed++
			}
		}
	} else {
		tbl := metrics.NewTable("job", "experiment", "seed", "backend", "status", "wall-clock")
		for _, job := range expanded {
			st, _ := r.Get(job.ID())
			tbl.AddRow(st.ID, st.Experiment, st.Options.Seed, st.Options.Backend, string(st.Status), st.Elapsed)
			if st.Status != runner.StatusDone {
				failed++
			}
		}
		fmt.Fprintf(out, "sweep: %d jobs, %d slots\n", len(expanded), r.Slots())
		fmt.Fprint(out, tbl.String())
	}
	if failed > 0 {
		return fmt.Errorf("sweep: %d of %d jobs failed", failed, len(expanded))
	}
	return nil
}
