// Command aergia regenerates the paper's tables and figures.
//
// Usage:
//
//	aergia -experiment fig6                       # full-scale run of one experiment
//	aergia -experiment all -quick                 # quick pass over every experiment
//	aergia -experiment fig6 -backend parallel     # same numbers, all cores
//	aergia -experiment fig6 -backend parallel -workers 4
//	aergia -list                                  # list experiment IDs
//
// The -backend flag selects the compute backend for all model math; serial
// and parallel produce bit-identical results under the same -seed, so the
// choice only affects wall-clock time.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"aergia/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "aergia:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("aergia", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		experiment = fs.String("experiment", "", "experiment ID (see -list) or 'all'")
		quick      = fs.Bool("quick", false, "use the reduced benchmark-scale configuration")
		seed       = fs.Uint64("seed", 1, "experiment seed")
		backend    = fs.String("backend", "serial", "compute backend: serial or parallel")
		workers    = fs.Int("workers", 0, "parallel backend worker count (0 = GOMAXPROCS)")
		list       = fs.Bool("list", false, "list available experiments")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintln(out, "available experiments:")
		for _, name := range experiments.Names() {
			fmt.Fprintf(out, "  %s\n", name)
		}
		return nil
	}
	if *experiment == "" {
		return fmt.Errorf("missing -experiment (or -list); available: %s",
			strings.Join(experiments.Names(), ", "))
	}
	// Runners validate the options themselves (experiments.validated), so a
	// bad -backend fails on the first experiment before any work starts.
	opt := experiments.Options{Quick: *quick, Seed: *seed, Backend: *backend, Workers: *workers}
	names := []string{*experiment}
	if *experiment == "all" {
		names = experiments.Names()
	}
	for i, name := range names {
		runner, ok := experiments.Registry[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q; available: %s",
				name, strings.Join(experiments.Names(), ", "))
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		if err := runner(opt, out); err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
	}
	return nil
}
