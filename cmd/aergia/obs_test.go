package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunTraceAndMetricsOut covers the observability dump flags: the trace
// file is Chrome trace-event JSON with a populated timeline, and the
// metrics file is a Prometheus text scrape including the bandwidth ledger
// and round families the run must have moved.
func TestRunTraceAndMetricsOut(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.json")
	metricsPath := filepath.Join(dir, "metrics.prom")
	var out bytes.Buffer
	err := run([]string{
		"-experiment", "fig6", "-quick", "-seed", "11",
		"-trace-out", tracePath, "-metrics-out", metricsPath,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}

	traceData, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var exported struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceData, &exported); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if exported.DisplayTimeUnit != "ms" || len(exported.TraceEvents) == 0 {
		t.Fatalf("trace export = unit %q with %d events",
			exported.DisplayTimeUnit, len(exported.TraceEvents))
	}
	var sawRound bool
	for _, e := range exported.TraceEvents {
		if e.Name == "round-start" && e.Phase == "X" {
			sawRound = true
		}
	}
	if !sawRound {
		t.Fatal("trace export has no round spans")
	}

	metricsData, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	scrape := string(metricsData)
	for _, family := range []string{
		`aergia_bandwidth_bytes_total{class="dispatch"}`,
		`aergia_bandwidth_bytes_total{class="update"}`,
		"# TYPE aergia_round_duration_seconds histogram",
		"# TYPE aergia_comm_messages_total counter",
	} {
		if !strings.Contains(scrape, family) {
			t.Fatalf("metrics dump missing %q:\n%s", family, scrape)
		}
	}
}

// TestRunTraceOutConflictsWithSweep: one trace file cannot attribute
// events across a concurrent grid, so the flag pair is a loud error.
func TestRunTraceOutConflictsWithSweep(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-sweep", `{"experiments":["fig4"],"quick":[true]}`,
		"-trace-out", filepath.Join(t.TempDir(), "run.json"),
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "-trace-out") {
		t.Fatalf("err = %v, want a -trace-out conflict", err)
	}
}
