// Package aergia's root benchmark harness regenerates every table and
// figure of the paper's evaluation (DESIGN.md §4 maps each benchmark to its
// experiment). Each benchmark iteration runs the complete experiment in
// Quick mode and reports the figure's headline quantities as custom
// metrics, so `go test -bench=. -benchmem` reproduces the whole evaluation.
package aergia_test

import (
	"io"
	"testing"

	"aergia/internal/experiments"
)

var benchOpt = experiments.Options{Quick: true, Seed: 1}

// BenchmarkFig1aHeterogeneityImpact regenerates Figure 1(a): round-duration
// multiplier as CPU variance grows.
func BenchmarkFig1aHeterogeneityImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig1a(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		worst := 0.0
		for _, p := range points {
			if p.Multiplier > worst {
				worst = p.Multiplier
			}
		}
		b.ReportMetric(worst, "max-multiplier")
	}
}

// BenchmarkFig1bDeadlineTime regenerates Figure 1(b): total training time
// under per-round deadlines.
func BenchmarkFig1bDeadlineTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.DeadlineSweep(benchOpt, false)
		if err != nil {
			b.Fatal(err)
		}
		unbounded := points[0].TotalTime.Seconds()
		tightest := points[len(points)-1].TotalTime.Seconds()
		b.ReportMetric(unbounded, "unbounded-s")
		b.ReportMetric(tightest, "tightest-deadline-s")
	}
}

// BenchmarkFig1cDeadlineAccuracy regenerates Figure 1(c): accuracy under
// deadlines on non-IID data.
func BenchmarkFig1cDeadlineAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.DeadlineSweep(benchOpt, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Accuracy, "acc-unbounded")
		b.ReportMetric(points[len(points)-1].Accuracy, "acc-tightest")
	}
}

// BenchmarkFig4PhaseProfile regenerates Figure 4: per-phase share of the
// training cycle for the paper's five dataset/network combinations.
func BenchmarkFig4PhaseProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		shares, err := experiments.Fig4(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		minBF, maxBF := 1.0, 0.0
		for _, s := range shares {
			if s.BF < minBF {
				minBF = s.BF
			}
			if s.BF > maxBF {
				maxBF = s.BF
			}
		}
		b.ReportMetric(100*minBF, "bf-min-%")
		b.ReportMetric(100*maxBF, "bf-max-%")
	}
}

// gridMetrics reports the per-strategy aggregate of a Figure 6/7 grid.
func gridMetrics(b *testing.B, cells []experiments.GridCell) {
	b.Helper()
	var fedavgTime, aergiaTime, aergiaAcc float64
	n := 0.0
	for _, c := range cells {
		switch c.Strategy {
		case "fedavg":
			fedavgTime += c.TotalTime.Seconds()
		case "aergia":
			aergiaTime += c.TotalTime.Seconds()
			aergiaAcc += c.Accuracy
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(aergiaAcc/n, "aergia-acc")
	}
	if fedavgTime > 0 {
		b.ReportMetric(100*(1-aergiaTime/fedavgTime), "aergia-vs-fedavg-time-saving-%")
	}
}

// BenchmarkFig6IID regenerates Figure 6: the five-strategy grid on IID data
// (accuracy subplots a–c, training time subplots d–f).
func BenchmarkFig6IID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.MainGrid(benchOpt, false)
		if err != nil {
			b.Fatal(err)
		}
		gridMetrics(b, cells)
	}
}

// BenchmarkFig7NonIID regenerates Figure 7: the same grid on non-IID(3)
// data.
func BenchmarkFig7NonIID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.MainGrid(benchOpt, true)
		if err != nil {
			b.Fatal(err)
		}
		gridMetrics(b, cells)
	}
}

// BenchmarkFig8RoundDensity regenerates Figure 8: the density of round
// durations per strategy on FMNIST.
func BenchmarkFig8RoundDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig8(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		var aergiaPeak, fedavgPeak float64
		for _, s := range series {
			switch s.Strategy {
			case "aergia":
				aergiaPeak = s.Peak
			case "fedavg":
				fedavgPeak = s.Peak
			}
		}
		b.ReportMetric(aergiaPeak, "aergia-peak-s")
		b.ReportMetric(fedavgPeak, "fedavg-peak-s")
	}
}

// BenchmarkFig9SimilarityFactor regenerates Figures 9(a) and 9(b): the
// similarity factor's effect on accuracy and round time.
func BenchmarkFig9SimilarityFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig9(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		first, last := points[0], points[len(points)-1] // f=1 … f=0
		b.ReportMetric(first.Accuracy, "acc-f1")
		b.ReportMetric(last.Accuracy, "acc-f0")
		b.ReportMetric(first.MeanRoundTime.Seconds(), "round-f1-s")
		b.ReportMetric(last.MeanRoundTime.Seconds(), "round-f0-s")
	}
}

// BenchmarkFig10NonIIDDegree regenerates Figure 10: accuracy over time for
// varying degrees of non-IIDness.
func BenchmarkFig10NonIIDDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig10(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(series[0].Final, "acc-iid")
		b.ReportMetric(series[len(series)-1].Final, "acc-most-noniid")
	}
}

// BenchmarkTable1FeatureMatrix regenerates Table 1 (qualitative; measures
// only the rendering cost).
func BenchmarkTable1FeatureMatrix(b *testing.B) {
	runner := experiments.Registry["table1"]
	for i := 0; i < b.N; i++ {
		if err := runner(benchOpt, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProfilerOverhead regenerates the §5.4 profiler-overhead claim
// (paper: 0.22% ± 0.09).
func BenchmarkProfilerOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.ProfilerOverhead(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range results {
			if r.Overhead > worst {
				worst = r.Overhead
			}
		}
		b.ReportMetric(100*worst, "overhead-%")
	}
}

// BenchmarkAblationFreeze measures the per-architecture saving from
// freezing the feature layers (the mechanism behind Aergia's gains).
func BenchmarkAblationFreeze(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gains, err := experiments.AblationFreeze(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, g := range gains {
			sum += g.Saving
		}
		b.ReportMetric(100*sum/float64(len(gains)), "mean-saving-%")
	}
}

// BenchmarkAsyncStudy reproduces the §2.3 trade-off: asynchronous
// aggregation vs synchronous FedAvg vs Aergia under equal update budgets.
func BenchmarkAsyncStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AsyncStudy(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Name {
			case "fedasync":
				b.ReportMetric(r.Accuracy, "async-acc")
				b.ReportMetric(r.TotalTime.Seconds(), "async-time-s")
			case "aergia":
				b.ReportMetric(r.Accuracy, "aergia-acc")
				b.ReportMetric(r.TotalTime.Seconds(), "aergia-time-s")
			}
		}
	}
}

// BenchmarkAblationSched measures Algorithm 1's makespan reduction over
// random heterogeneous clusters.
func BenchmarkAblationSched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gain, err := experiments.AblationSched(benchOpt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*gain.MeanReduction, "mean-reduction-%")
	}
}
