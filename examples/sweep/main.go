// Sweep: submit a parameter grid to a running aergiad daemon, poll until
// every job lands, and print where each result came from.
//
// Start the daemon first, then run the example:
//
//	go run ./cmd/aergiad -addr :8080 -store aergiad.jsonl &
//	go run ./examples/sweep
//
// Submitting the same grid twice demonstrates the resume path: the second
// submission is answered entirely from the daemon's result store, so every
// job is already "done" in the submit response. The same grid also runs
// without a daemon at all: aergia -sweep @grid.json -store out.jsonl.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"aergia/internal/runner"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "aergiad base URL")
	flag.Parse()
	if err := run(*addr); err != nil {
		log.Fatal(err)
	}
}

func run(base string) error {
	// Four quick cells: the main IID grid at two seeds on both compute
	// backends. Backends are bit-identical, so the sweep doubles as an
	// end-to-end parity check over the service layer.
	sweep := runner.Sweep{
		Experiments: []string{"fig6"},
		Seeds:       []uint64{1, 2},
		Backends:    []string{"serial", "parallel"},
		Quick:       []bool{true},
	}
	body, err := json.Marshal(map[string]any{"sweep": sweep})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("submit sweep (is aergiad running?): %w", err)
	}
	defer resp.Body.Close()
	var submitted struct {
		Jobs  []runner.JobState `json:"jobs"`
		Error string            `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&submitted); err != nil {
		return err
	}
	if submitted.Error != "" {
		return fmt.Errorf("daemon rejected sweep: %s", submitted.Error)
	}
	fmt.Printf("submitted %d jobs to %s\n", len(submitted.Jobs), base)

	for _, job := range submitted.Jobs {
		state, err := await(base, job.ID)
		if err != nil {
			return err
		}
		fmt.Printf("  %-22s %-6s seed %d  backend %-8s  %8.2fs wall  %5d result bytes\n",
			state.ID, state.Status, state.Options.Seed, state.Options.Backend,
			state.Elapsed.Seconds(), len(state.Result))
		if state.Status != runner.StatusDone {
			return fmt.Errorf("job %s failed: %s", state.ID, state.Error)
		}
	}
	fmt.Println("all jobs done — resubmit the same sweep and the daemon answers")
	fmt.Println("straight from its store without recomputing a single cell.")
	return nil
}

// await polls one job until it leaves the queue.
func await(base, id string) (runner.JobState, error) {
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			return runner.JobState{}, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return runner.JobState{}, fmt.Errorf("job %s: daemon returned %s", id, resp.Status)
		}
		var state runner.JobState
		err = json.NewDecoder(resp.Body).Decode(&state)
		resp.Body.Close()
		if err != nil {
			return runner.JobState{}, err
		}
		if state.Status == runner.StatusDone || state.Status == runner.StatusFailed {
			return state, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
}
