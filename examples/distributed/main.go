// Distributed: runs the same federator/client actors over real TCP on
// localhost instead of the virtual-time simulator, demonstrating that the
// middleware's message-driven design is transport-agnostic (the paper's
// testbed is peer-to-peer RPC, §5.1).
//
// The cluster is described once as an fl.Topology and materialized with
// Build — the exact builder behind fl.Run and the experiment suite — then
// bound to an rpc.Network instead of the simulator by an fl.Deployment.
// See DESIGN.md §6 for the build/bind contract; no wiring (dataset
// generation, sharding, signer setup, payload registration, peer address
// books) lives in this example anymore.
//
// With -codec, every client-side model payload (updates, frozen-model
// offload shipments, feature returns) is codec-encoded before it hits the
// wire — real bytes on real TCP — and the run prints the per-class
// bandwidth counters, so `-codec topk` vs `-codec none` shows the
// compression directly (the CI smoke asserts >= 4x on the update traffic).
//
// Run with: go run ./examples/distributed [-clients N] [-rounds R] [-codec C]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"aergia/internal/cluster"
	"aergia/internal/codec"
	"aergia/internal/dataset"
	"aergia/internal/fl"
	"aergia/internal/nn"
	"aergia/internal/rpc"
)

func main() {
	clients := flag.Int("clients", 6, "cluster size (>= 2)")
	rounds := flag.Int("rounds", 3, "global communication rounds")
	codecName := flag.String("codec", "none", "wire codec for model updates: "+codec.Names())
	flag.Parse()
	if err := run(*clients, *rounds, *codecName); err != nil {
		log.Fatal(err)
	}
}

func run(clients, rounds int, codecName string) error {
	if clients < 2 {
		return fmt.Errorf("need at least 2 clients, got %d", clients)
	}
	if _, err := codec.Canonical(codecName); err != nil {
		return fmt.Errorf("invalid -codec %q (allowed values: %s)", codecName, codec.Names())
	}
	// One slow straggler plus fast peers triggers Aergia's freeze/offload
	// protocol every round.
	speeds := make([]float64, clients)
	speeds[0] = 0.15
	for i := 1; i < clients; i++ {
		speeds[i] = 0.85 + 0.03*float64(i%5)
	}

	// The whole cluster — synthetic data, shards, speeds, seed-derived
	// signer and enclave material, initialized actors — in one declarative
	// value. The same Topology runs bit-identically on the simulator.
	top := fl.Topology{
		Strategy:     fl.NewAergia(0, 1),
		Arch:         nn.ArchMNISTSmall,
		Dataset:      dataset.MNIST,
		SmallImages:  true,
		Clients:      clients,
		Rounds:       rounds,
		LocalEpochs:  2,
		BatchSize:    8,
		LR:           0.05,
		TrainSamples: 40 * clients,
		TestSamples:  100,
		Speeds:       speeds,
		// A fast cost model keeps the wall-clock sleeps short while still
		// exercising the full offloading protocol.
		Cost:           cluster.CostModel{FLOPSPerSecond: 2e9},
		ProfileBatches: 1,
		Seed:           3,
		Codec:          codecName,
	}
	built, err := top.Build()
	if err != nil {
		return err
	}

	// Bind the built cluster to real TCP peers on loopback. The Deployment
	// registers every actor, distributes the address book, announces the
	// payload types for gob, starts the federator, and waits for the run.
	net := rpc.NewNetwork()
	net.Timeout = 2 * time.Minute
	defer func() {
		if err := net.Close(); err != nil {
			log.Printf("close network: %v", err)
		}
	}()
	fmt.Printf("running %d rounds of Aergia over TCP with %d clients (codec %s)...\n",
		rounds, clients, codecName)
	res, err := (&fl.Deployment{Cluster: built, Transport: net}).Run()
	if err != nil {
		return err
	}

	fmt.Printf("finished: accuracy %.3f, wall time %.2fs, offloads %d\n",
		res.FinalAccuracy, res.TotalTime.Seconds(), res.TotalOffloads())
	for _, r := range res.Rounds {
		fmt.Printf("  round %d: %.3fs, %d updates, %d offloads\n",
			r.Round, r.Duration.Seconds(), r.Completed, r.Offloads)
	}
	bw := res.Bandwidth
	fmt.Printf("bandwidth (codec %s): dispatch %d B, updates %d B, offloads %d B, results %d B, control %d B\n",
		codecName, bw.DispatchBytes, bw.UpdateBytes, bw.OffloadBytes, bw.ResultBytes, bw.ControlBytes)
	fmt.Printf("total update bytes: %d\n", bw.UpdateTraffic())
	return nil
}
