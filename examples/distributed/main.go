// Distributed: runs the same federator/client actors over real TCP on
// localhost instead of the virtual-time simulator, demonstrating that the
// middleware's message-driven design is transport-agnostic (the paper's
// testbed is peer-to-peer RPC, §5.1).
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"time"

	"aergia/internal/cluster"
	"aergia/internal/comm"
	"aergia/internal/dataset"
	"aergia/internal/fl"
	"aergia/internal/nn"
	"aergia/internal/rpc"
	"aergia/internal/sched"
	"aergia/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func registerPayloads() {
	rpc.RegisterPayload(fl.TrainPayload{})
	rpc.RegisterPayload(fl.ProfilePayload{})
	rpc.RegisterPayload(fl.SchedulePayload{})
	rpc.RegisterPayload(fl.OffloadPayload{})
	rpc.RegisterPayload(fl.UpdatePayload{})
	rpc.RegisterPayload(fl.OffloadResultPayload{})
}

func run() error {
	registerPayloads()

	const clients = 6
	const rounds = 3
	// A fast cost model keeps the wall-clock sleeps short while still
	// exercising the full offloading protocol.
	cost := cluster.CostModel{FLOPSPerSecond: 2e9}
	speeds := []float64{0.15, 0.9, 0.95, 1.0, 0.85, 0.9}

	train, err := dataset.Generate(dataset.Config{
		Kind: dataset.MNIST, N: 40 * clients, Seed: 3, Small: true,
	})
	if err != nil {
		return err
	}
	shards, err := dataset.PartitionIID(train, clients, tensor.NewRNG(3))
	if err != nil {
		return err
	}
	test, err := dataset.Generate(dataset.Config{
		Kind: dataset.MNIST, N: 100, Seed: 3, Small: true, Variant: 1,
	})
	if err != nil {
		return err
	}

	// Deterministic key material: the example is a reproducible demo, so the
	// signer derives from a fixed seed like the simulator does.
	signer, err := sched.NewSigner(tensor.NewRNG(3 ^ 0x5ea1ed))
	if err != nil {
		return err
	}

	// Start one TCP peer per client plus one for the federator.
	registry := make(map[comm.NodeID]string, clients+1)
	peers := make([]*rpc.Peer, 0, clients+1)
	defer func() {
		for _, p := range peers {
			if err := p.Close(); err != nil {
				log.Printf("close peer %d: %v", p.ID(), err)
			}
		}
	}()

	infos := make([]fl.ClientInfo, clients)
	for i := 0; i < clients; i++ {
		id := comm.NodeID(i)
		client := &fl.Client{
			ID:               id,
			Arch:             nn.ArchMNISTSmall,
			Data:             shards[i],
			Speed:            speeds[i],
			Cost:             cost,
			Verifier:         sched.NewVerifier(signer.PublicKey()),
			ProfilerOverhead: -1,
		}
		if err := client.Init(); err != nil {
			return err
		}
		peer, err := rpc.Listen(id, "127.0.0.1:0", client)
		if err != nil {
			return err
		}
		peers = append(peers, peer)
		registry[id] = peer.Addr()
		infos[i] = fl.ClientInfo{ID: id, Samples: shards[i].Len(), Speed: speeds[i]}
	}

	testXs, testYs := test.Inputs(), test.Labels()
	evalNet, err := nn.Build(nn.ArchMNISTSmall, 3)
	if err != nil {
		return err
	}
	done := make(chan *fl.Results, 1)
	fed := &fl.Federator{
		Arch:     nn.ArchMNISTSmall,
		Strategy: fl.NewAergia(0, 1),
		Clients:  infos,
		Local: fl.LocalConfig{
			Epochs: 2, BatchSize: 8, LR: 0.05, ProfileBatches: 1,
		},
		Rounds: rounds,
		Evaluate: func(w nn.Weights) (float64, error) {
			if err := evalNet.LoadWeights(w); err != nil {
				return 0, err
			}
			return evalNet.Evaluate(testXs, testYs)
		},
		Signer:   signer,
		Seed:     3,
		OnFinish: func(r *fl.Results) { done <- r },
	}
	if err := fed.Init(); err != nil {
		return err
	}
	fedPeer, err := rpc.Listen(comm.FederatorID, "127.0.0.1:0", fed)
	if err != nil {
		return err
	}
	peers = append(peers, fedPeer)
	registry[comm.FederatorID] = fedPeer.Addr()

	epoch := time.Now()
	for _, p := range peers {
		p.SetRegistry(registry)
		p.SetEpoch(epoch)
	}

	fmt.Printf("running %d rounds of Aergia over TCP with %d clients...\n", rounds, clients)
	fed.Start(fedPeer.Env())
	select {
	case res := <-done:
		fmt.Printf("finished: accuracy %.3f, wall time %.2fs, offloads %d\n",
			res.FinalAccuracy, res.TotalTime.Seconds(), res.TotalOffloads())
		for _, r := range res.Rounds {
			fmt.Printf("  round %d: %.3fs, %d updates, %d offloads\n",
				r.Round, r.Duration.Seconds(), r.Completed, r.Offloads)
		}
	case <-time.After(2 * time.Minute):
		return fmt.Errorf("distributed run timed out")
	}
	return nil
}
