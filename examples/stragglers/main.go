// Stragglers: a deep-dive into straggler mitigation on a cluster with two
// severe stragglers. Compares waiting (FedAvg), dropping (deadline FL),
// tiering (TiFL), and offloading (Aergia) — the design space of §2 and §6.
//
// Run with: go run ./examples/stragglers
package main

import (
	"fmt"
	"log"
	"time"

	"aergia/internal/dataset"
	"aergia/internal/fl"
	"aergia/internal/metrics"
	"aergia/internal/nn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 2 stragglers (0.1 CPU), 4 medium, 6 strong clients.
	speeds := []float64{
		0.10, 0.12,
		0.45, 0.5, 0.55, 0.6,
		0.85, 0.9, 0.9, 0.95, 1.0, 1.0,
	}
	base := fl.Config{
		Arch:          nn.ArchFMNISTSmall,
		Dataset:       dataset.FMNIST,
		SmallImages:   true,
		Clients:       len(speeds),
		Rounds:        8,
		LocalEpochs:   2,
		BatchSize:     8,
		TrainSamples:  40 * len(speeds),
		TestSamples:   150,
		NoiseStd:      1.4,
		NonIIDClasses: 3,
		Speeds:        speeds,
		Seed:          7,
	}

	// Measure the unbounded round first so the deadline is meaningful.
	fedavgCfg := base
	fedavgCfg.Strategy = fl.NewFedAvg(0)
	fedavg, err := fl.Run(fedavgCfg)
	if err != nil {
		return err
	}
	deadline := time.Duration(float64(fedavg.MeanRoundDuration()) * 0.4)

	strategies := []fl.Strategy{
		fl.NewDeadlineFedAvg(0, deadline),
		fl.NewTiFL(0, 3),
		fl.NewAergia(0, 1),
	}
	results := []*fl.Results{fedavg}
	for _, strat := range strategies {
		cfg := base
		cfg.Strategy = strat
		res, err := fl.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", strat.Name(), err)
		}
		results = append(results, res)
	}

	fmt.Println("Straggler mitigation on a 12-client cluster with two 0.1-CPU stragglers")
	fmt.Println("(non-IID(3) synthetic FMNIST; same rounds for every strategy)")
	fmt.Println()
	tbl := metrics.NewTable("strategy", "accuracy", "total-time", "mean-round",
		"dropped-updates", "offloads")
	for _, res := range results {
		dropped := 0
		for _, r := range res.Rounds {
			completed := r.Completed
			if completed < len(speeds) && res.Strategy != "tifl" {
				dropped += len(speeds) - completed
			}
		}
		tbl.AddRow(res.Strategy, res.FinalAccuracy, res.TotalTime,
			res.MeanRoundDuration(), dropped, res.TotalOffloads())
	}
	fmt.Print(tbl.String())
	fmt.Println()
	fmt.Println("Waiting is slow; dropping is fast but loses the stragglers' unique data;")
	fmt.Println("Aergia keeps their contribution by freezing + offloading their model.")
	return nil
}
