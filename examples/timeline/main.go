// Timeline: records and renders the event timeline of Aergia rounds — the
// executable counterpart of the paper's Figure 5 (profiling, scheduling,
// freezing & offloading, helper training, aggregation).
//
// Run with: go run ./examples/timeline
package main

import (
	"fmt"
	"log"
	"os"

	"aergia/internal/dataset"
	"aergia/internal/fl"
	"aergia/internal/nn"
	"aergia/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tl := trace.NewLog()
	cfg := fl.Config{
		Strategy:     fl.NewAergia(0, 1),
		Arch:         nn.ArchMNISTSmall,
		Dataset:      dataset.MNIST,
		SmallImages:  true,
		Clients:      6,
		Rounds:       2,
		LocalEpochs:  2,
		BatchSize:    8,
		TrainSamples: 240,
		TestSamples:  80,
		// Two stragglers against four strong clients.
		Speeds: []float64{0.12, 0.18, 0.9, 0.95, 1.0, 0.85},
		Seed:   21,
		Trace:  tl,
	}
	res, err := fl.Run(cfg)
	if err != nil {
		return err
	}

	fmt.Println("Aergia round timeline (compare with the paper's Figure 5)")
	fmt.Println()
	fmt.Println("Round 0, chronological:")
	events := tl.FilterRound(0)
	sub := trace.NewLog()
	for _, e := range events {
		sub.Record(e.Time, e.Node, e.Round, e.Kind, e.Detail)
	}
	if err := sub.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("Round 0, per-node lanes:")
	if err := sub.Lanes(os.Stdout, 72); err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("run: %d rounds, final accuracy %.3f, %d offloads, total %v\n",
		len(res.Rounds), res.FinalAccuracy, res.TotalOffloads(), res.TotalTime)
	return nil
}
