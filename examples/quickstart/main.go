// Quickstart: train a federated model on a heterogeneous simulated cluster
// with FedAvg, then with Aergia, and compare accuracy and training time.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aergia/internal/dataset"
	"aergia/internal/fl"
	"aergia/internal/nn"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base := fl.Config{
		Arch:         nn.ArchMNISTSmall,
		Dataset:      dataset.MNIST,
		SmallImages:  true,
		Clients:      12,
		Rounds:       10,
		LocalEpochs:  2,
		BatchSize:    8,
		TrainSamples: 480,
		TestSamples:  150,
		NoiseStd:     1.4,
		Seed:         42,
	}

	fmt.Println("Aergia quickstart: 12 heterogeneous clients, synthetic MNIST")
	fmt.Println()
	for _, strat := range []fl.Strategy{fl.NewFedAvg(0), fl.NewAergia(0, 1)} {
		cfg := base
		cfg.Strategy = strat
		res, err := fl.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", strat.Name(), err)
		}
		fmt.Printf("%-8s final accuracy %.3f  total time %8.2fs  mean round %6.2fs  offloads %d\n",
			res.Strategy, res.FinalAccuracy, res.TotalTime.Seconds(),
			res.MeanRoundDuration().Seconds(), res.TotalOffloads())
		for _, r := range res.Rounds {
			if r.Accuracy >= 0 {
				fmt.Printf("   round %2d  %6.2fs  acc %.3f\n",
					r.Round, r.Duration.Seconds(), r.Accuracy)
			}
		}
		fmt.Println()
	}
	fmt.Println("Aergia finishes the same number of rounds in less time by freezing")
	fmt.Println("the stragglers' feature layers and offloading them to fast clients.")
	return nil
}
