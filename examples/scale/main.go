// Scale: the 100k-client proof of the scale-out subsystem (internal/hier,
// DESIGN.md §11). One process simulates clusters of 10k, ~32k, and 100k
// clients behind a fixed 512-client per-round cohort and 32 edge
// aggregation tiers, and prints one parseable line per cluster size with
// the wall-clock and heap cost of the run:
//
//	scale: clients=100000 tiers=32 cohort=512 rounds=2 wall_ms=... heap_mb=... hydrated=... accuracy=...
//
// Because unsampled clients stay lazy profiles (no model, no optimizer, no
// data shard) and the root federator aggregates 32 edge deltas instead of
// N client updates, both curves must grow sublinearly in N: the run exits
// non-zero if the 10x client growth from the first to the last point costs
// more than 6x in either wall-clock or heap, so CI uses it as the
// clients-vs-wall-clock / clients-vs-RSS smoke (BENCH_scale.json).
//
// Run with: go run ./examples/scale [-clients 10000,31623,100000] [-cohort 512] [-tiers 32] [-rounds 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strconv"
	"strings"
	"time"

	"aergia/internal/dataset"
	"aergia/internal/fl"
	"aergia/internal/hier"
	"aergia/internal/nn"
	"aergia/internal/tensor"
)

func main() {
	clientsList := flag.String("clients", "10000,31623,100000", "comma-separated cluster sizes")
	cohort := flag.Int("cohort", 512, "per-round sampled cohort size (fixed across cluster sizes)")
	tiers := flag.Int("tiers", 32, "edge aggregation tiers")
	rounds := flag.Int("rounds", 2, "global communication rounds")
	flag.Parse()
	if err := run(*clientsList, *cohort, *tiers, *rounds); err != nil {
		log.Fatal(err)
	}
}

// point is one (cluster size) measurement of the two curves.
type point struct {
	clients  int
	wall     time.Duration
	heapMB   float64
	hydrated int
}

func run(clientsList string, cohort, tiers, rounds int) error {
	var sizes []int
	for _, f := range strings.Split(clientsList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			return fmt.Errorf("bad -clients entry %q", f)
		}
		sizes = append(sizes, n)
	}
	if cohort < 1 || tiers < 1 || rounds < 1 {
		return fmt.Errorf("need positive -cohort, -tiers, -rounds")
	}
	var points []point
	for _, n := range sizes {
		p, err := runOne(n, cohort, tiers, rounds)
		if err != nil {
			return fmt.Errorf("clients=%d: %w", n, err)
		}
		points = append(points, p)
	}
	if len(points) < 2 {
		return nil
	}
	// The proof: 10x more clients must not cost anywhere near 10x. The
	// cohort is fixed, so training work is constant and the only O(N) terms
	// are the lazy profiles and the sampler hashes — both tiny.
	first, last := points[0], points[len(points)-1]
	growth := float64(last.clients) / float64(first.clients)
	limit := 0.6 * growth
	if wallRatio := float64(last.wall) / float64(first.wall); wallRatio > limit {
		return fmt.Errorf("wall-clock grew %.2fx over a %.0fx client growth (limit %.1fx) — round cost is not sublinear",
			wallRatio, growth, limit)
	}
	if heapRatio := last.heapMB / first.heapMB; heapRatio > limit {
		return fmt.Errorf("heap grew %.2fx over a %.0fx client growth (limit %.1fx) — memory is not cohort-bound",
			heapRatio, growth, limit)
	}
	fmt.Printf("scale: sublinear OK (%.0fx clients -> %.2fx wall, %.2fx heap)\n",
		growth, float64(last.wall)/float64(first.wall), last.heapMB/first.heapMB)
	return nil
}

func runOne(n, cohort, tiers, rounds int) (point, error) {
	be, err := tensor.NewBackend("parallel32", 0)
	if err != nil {
		return point{}, err
	}
	top := fl.Topology{
		Strategy:    fl.NewFedAvg(0),
		Arch:        nn.ArchMNISTSmall,
		Dataset:     dataset.MNIST,
		SmallImages: true,
		Clients:     n,
		Rounds:      rounds,
		LocalEpochs: 1,
		BatchSize:   4,
		// 8 local samples per client, generated lazily: only hydrated
		// clients ever materialize their shard.
		TrainSamples: 8 * n,
		TestSamples:  256,
		EvalEvery:    rounds,
		Seed:         7,
		Backend:      be,
		Hier: hier.Options{
			Sample: float64(cohort) / float64(n),
			Tiers:  tiers,
		},
	}
	cl, err := top.Build()
	if err != nil {
		return point{}, err
	}
	tr, err := fl.NewTransport(fl.TransportSim, nil)
	if err != nil {
		return point{}, err
	}
	defer tr.Close()
	start := time.Now()
	res, err := (&fl.Deployment{Cluster: cl, Transport: tr}).Run()
	if err != nil {
		return point{}, err
	}
	wall := time.Since(start)
	hydrated := 0
	for _, s := range cl.Hier.Shells {
		if s.Hydrations() > 0 {
			hydrated++
		}
	}
	// Heap with the whole cluster still live: the honest "per-process RSS"
	// of holding N simulated clients, dominated by the hydrated cohort.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heapMB := float64(ms.HeapAlloc) / (1 << 20)
	fmt.Printf("scale: clients=%d tiers=%d cohort=%d rounds=%d wall_ms=%d heap_mb=%.1f hydrated=%d accuracy=%.3f\n",
		n, tiers, cohort, rounds, wall.Milliseconds(), heapMB, hydrated, res.FinalAccuracy)
	return point{clients: n, wall: wall, heapMB: heapMB, hydrated: hydrated}, nil
}
