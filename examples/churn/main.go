// Churn: the fault-and-churn proof over real TCP. The same fl.Topology
// that powers the simulator experiments is bound to an rpc.Network through
// a chaos.Transport carrying a full-churn plan: every client crashes once
// inside the crash window and rejoins after its downtime, while the
// federator keeps the rounds converging — crashed clients are written off
// for their round, rejoining clients are re-seeded from the topology seed
// and re-enrolled mid-round when their update can still matter.
//
// The run exits non-zero unless at least one crash and one rejoin actually
// fired, so CI uses it as the end-to-end churn smoke (3 clients, real TCP).
//
// Run with: go run ./examples/churn [-clients N] [-rounds R] [-transport sim|tcp]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"aergia/internal/chaos"
	"aergia/internal/cluster"
	"aergia/internal/dataset"
	"aergia/internal/fl"
	"aergia/internal/nn"
)

func main() {
	clients := flag.Int("clients", 3, "cluster size (>= 2)")
	rounds := flag.Int("rounds", 4, "global communication rounds")
	transport := flag.String("transport", "tcp", "message transport: sim or tcp")
	flag.Parse()
	if err := run(*clients, *rounds, *transport); err != nil {
		log.Fatal(err)
	}
}

func run(clients, rounds int, transport string) error {
	if clients < 2 {
		return fmt.Errorf("need at least 2 clients, got %d", clients)
	}
	speeds := make([]float64, clients)
	for i := range speeds {
		speeds[i] = 0.5 + 0.5*float64(i)/float64(clients)
	}

	top := fl.Topology{
		Strategy:     fl.NewFedAvg(0),
		Arch:         nn.ArchMNISTSmall,
		Dataset:      dataset.MNIST,
		SmallImages:  true,
		Clients:      clients,
		Rounds:       rounds,
		LocalEpochs:  2,
		BatchSize:    8,
		LR:           0.05,
		TrainSamples: 40 * clients,
		TestSamples:  100,
		Speeds:       speeds,
		// The cost model paces wall-clock rounds at a few hundred ms, so
		// the crash window spans the first rounds and every rejoin fires
		// while the run is still going.
		Cost: cluster.CostModel{FLOPSPerSecond: 2e8},
		Seed: 3,
		// Full churn: every client crashes once in the first 400ms and
		// rejoins 250ms later. The quorum lets rounds aggregate while part
		// of the cluster is dark; the round timeout bounds a blackout.
		Chaos: chaos.Plan{
			Churn:        1,
			Rejoin:       1,
			Window:       400 * time.Millisecond,
			Down:         250 * time.Millisecond,
			Quorum:       0.34,
			RoundTimeout: 5 * time.Second,
		},
	}
	built, err := top.Build()
	if err != nil {
		return err
	}

	inner, err := fl.NewTransport(transport, nil)
	if err != nil {
		return err
	}
	// The chaos wrapper injects the plan's faults into any transport; the
	// Deployment below is byte-for-byte the one examples/distributed uses.
	net := chaos.New(inner, built.Topology.Chaos, built.Topology.Seed)
	defer func() {
		if cerr := net.Close(); cerr != nil {
			log.Printf("close network: %v", cerr)
		}
	}()
	fmt.Printf("running %d rounds of FedAvg over %s with %d clients under full churn...\n",
		rounds, transport, clients)
	res, err := (&fl.Deployment{Cluster: built, Transport: net}).Run()
	if err != nil {
		return err
	}

	stats := net.Stats()
	fmt.Printf("finished: accuracy %.3f, wall time %.2fs\n", res.FinalAccuracy, res.TotalTime.Seconds())
	for _, r := range res.Rounds {
		fmt.Printf("  round %d: %.3fs, %d/%d updates\n", r.Round, r.Duration.Seconds(), r.Completed, clients)
	}
	fmt.Printf("faults injected: %d crashes, %d rejoins, %d deliveries to dark nodes dropped, %d timers suppressed\n",
		stats.Crashes, stats.Rejoins, stats.DroppedDown, stats.SuppressedTimers)
	if stats.Crashes == 0 || stats.Rejoins == 0 {
		return fmt.Errorf("churn smoke failed: %d crashes and %d rejoins fired (want >= 1 each)",
			stats.Crashes, stats.Rejoins)
	}
	if len(res.Rounds) != rounds {
		return fmt.Errorf("churn smoke failed: %d rounds completed, want %d", len(res.Rounds), rounds)
	}
	return nil
}
