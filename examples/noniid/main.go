// Non-IID: shows how the degree of label skew affects accuracy, and how
// Aergia's similarity-aware matching (the enclave-computed EMD matrix and
// the similarity factor f) protects accuracy when offloading across clients
// with different data distributions (§4.4, Figures 9 and 10).
//
// Run with: go run ./examples/noniid
package main

import (
	"fmt"
	"log"

	"aergia/internal/dataset"
	"aergia/internal/fl"
	"aergia/internal/metrics"
	"aergia/internal/nn"
	"aergia/internal/similarity"
	"aergia/internal/tensor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// First, the raw ingredient: EMD between client class distributions.
	train, err := dataset.Generate(dataset.Config{
		Kind: dataset.FMNIST, N: 480, Seed: 11, Small: true,
	})
	if err != nil {
		return err
	}
	shards, err := dataset.PartitionNonIID(train, 6, 2, tensor.NewRNG(11))
	if err != nil {
		return err
	}
	dists := make([][]int, len(shards))
	for i, s := range shards {
		dists[i] = s.ClassDistribution()
	}
	m, err := similarity.NewMatrix(dists)
	if err != nil {
		return err
	}
	fmt.Println("Pairwise EMD between 6 non-IID(2) client shards (0 = identical):")
	for i := 0; i < m.Size(); i++ {
		for j := 0; j < m.Size(); j++ {
			fmt.Printf(" %.2f", m.At(i, j))
		}
		fmt.Println()
	}
	fmt.Println()

	// Second: the degree of non-IIDness vs accuracy (Figure 10 shape).
	fmt.Println("Aergia accuracy by degree of non-IIDness (same rounds each):")
	tbl := metrics.NewTable("level", "final-accuracy", "total-time")
	for _, lvl := range []struct {
		label   string
		classes int
	}{{"IID", 0}, {"non-IID(5)", 5}, {"non-IID(2)", 2}} {
		cfg := fl.Config{
			Strategy:      fl.NewAergia(0, 1),
			Arch:          nn.ArchFMNISTSmall,
			Dataset:       dataset.FMNIST,
			SmallImages:   true,
			Clients:       12,
			Rounds:        8,
			LocalEpochs:   2,
			BatchSize:     8,
			TrainSamples:  480,
			TestSamples:   150,
			NoiseStd:      1.6,
			NonIIDClasses: lvl.classes,
			Seed:          11,
		}
		res, err := fl.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", lvl.label, err)
		}
		tbl.AddRow(lvl.label, res.FinalAccuracy, res.TotalTime)
	}
	fmt.Print(tbl.String())
	return nil
}
